// Package allocfree turns the steady-state zero-allocation property of
// annotated functions into a static proof. PR 6 pinned the SoA tile
// kernel at AllocsPerRun == 0, but a runtime sample only witnesses the
// inputs it ran; this analyzer recompiles each annotated package with
// the compiler's escape diagnostics (-m) and fails any
// //tsvlint:allocfree function whose body contains an allocation the
// compiler could not keep off the heap.
//
// Mechanism. `go build -gcflags=-m` is useless here — the build cache
// swallows the output on cache hits — so the analyzer reproduces the
// compile directly: `go list -deps -export` resolves export data for
// the package's import closure into an -importcfg, then `go tool
// compile -m` reruns the real compilation, deterministically, every
// time. Diagnostics land on file:line:col positions that are mapped
// back into annotated function ranges (the compiler attributes
// inlined callees' allocations to the call site, so helpers count
// against their callers — which is the honest accounting).
//
// Policy. Two diagnostic families fail the proof inside an annotated
// range:
//
//   - "moved to heap: x" — a variable forced to the heap allocates on
//     every call;
//   - "<expr> escapes to heap" where expr is an allocation the
//     function performs (make, new, &composite, func literal, slice or
//     map literal, string conversion) — boxing of operands into
//     interface arguments (fmt.Errorf on error paths) is deliberately
//     tolerated: error paths are off the steady state, and a hot-path
//     boxing bug shows up as the call itself under hotpath rules.
//
// One allowance mirrors the hotpath analyzer's amortization contract:
// an allocation attributed to a call of a grow*-prefixed helper
// (growF64, growI32, growBytes…) is the amortized realloc path of a
// reused buffer and does not count against steady state.
//
// The analyzer only runs as a program analyzer: it needs the module
// directory to invoke the toolchain, which vettool mode does not have.
package allocfree

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"tsvstress/internal/analysis"
)

// Analyzer proves //tsvlint:allocfree functions allocation-free
// against compiler escape diagnostics.
var Analyzer = &analysis.Analyzer{
	Name:       "allocfree",
	Doc:        "//tsvlint:allocfree functions must produce no heap allocations under the compiler's escape analysis",
	RunProgram: run,
}

const directive = "//tsvlint:allocfree"

// annotated is one function carrying the directive.
type annotated struct {
	name      string
	file      string // absolute path
	startLine int
	endLine   int
}

func run(pass *analysis.ProgramPass) error {
	prog := pass.Program
	for _, pkg := range prog.Packages {
		if strings.Contains(pkg.Path, " [") {
			continue // test variant: the plain package already covers it
		}
		fns, files, astByFile := annotatedFuncs(prog, pkg)
		if len(fns) == 0 {
			continue
		}
		diags, err := compileDiagnostics(prog, pkg, files)
		if err != nil {
			return fmt.Errorf("allocfree: %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			fn := owner(fns, d)
			if fn == nil {
				continue
			}
			if !countsAsAllocation(d.msg) {
				continue
			}
			pos := posFor(prog.Fset, astByFile[d.file], d.line, d.col)
			if pos != token.NoPos && growCallAt(astByFile[d.file], pos) {
				continue
			}
			if pos == token.NoPos {
				pos = astByFile[d.file].Pos()
			}
			pass.Reportf(pos, "%s is annotated %s but the compiler reports: %s", fn.name, directive, d.msg)
		}
	}
	return nil
}

// annotatedFuncs collects the directive-carrying functions of a
// package plus the package's non-test files (absolute paths, compile
// order) and a filename → AST index.
func annotatedFuncs(prog *analysis.Program, pkg *analysis.Package) ([]annotated, []string, map[string]*ast.File) {
	var fns []annotated
	var files []string
	astByFile := make(map[string]*ast.File)
	for _, f := range pkg.Files {
		name := absIn(prog.Dir, prog.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
		astByFile[name] = f
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(c.Text)
				if text == directive || strings.HasPrefix(text, directive+" ") {
					fns = append(fns, annotated{
						name:      fd.Name.Name,
						file:      name,
						startLine: prog.Fset.Position(fd.Pos()).Line,
						endLine:   prog.Fset.Position(fd.End()).Line,
					})
					break
				}
			}
		}
	}
	sort.Strings(files)
	return fns, files, astByFile
}

// escapeDiag is one parsed compiler diagnostic.
type escapeDiag struct {
	file string
	line int
	col  int
	msg  string
}

var diagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// compileDiagnostics recompiles the package with -m and parses the
// escape diagnostics.
func compileDiagnostics(prog *analysis.Program, pkg *analysis.Package, files []string) ([]escapeDiag, error) {
	imports := make(map[string]bool)
	for _, f := range pkg.Files {
		name := prog.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	var paths []string
	for p := range imports {
		if p != "unsafe" { // resolved by the compiler itself
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	exports, err := analysis.ExportData(prog.Dir, paths)
	if err != nil {
		return nil, err
	}

	tmp, err := os.MkdirTemp("", "tsvlint-allocfree")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	var cfg bytes.Buffer
	cfgPaths := make([]string, 0, len(exports))
	for p := range exports {
		cfgPaths = append(cfgPaths, p)
	}
	sort.Strings(cfgPaths)
	for _, p := range cfgPaths {
		fmt.Fprintf(&cfg, "packagefile %s=%s\n", p, exports[p])
	}
	cfgPath := filepath.Join(tmp, "importcfg")
	if err := os.WriteFile(cfgPath, cfg.Bytes(), 0o644); err != nil {
		return nil, err
	}

	plainPath, _, _ := strings.Cut(pkg.Path, " [")
	args := []string{"tool", "compile",
		"-p", plainPath,
		"-importcfg", cfgPath,
		"-o", filepath.Join(tmp, "pkg.a"),
		"-m",
	}
	if prog.GoVersion != "" {
		args = append(args, "-lang=go"+prog.GoVersion)
	}
	args = append(args, files...)
	cmd := exec.Command("go", args...)
	if prog.Dir != "" {
		cmd.Dir = prog.Dir
	}
	// -m diagnostics land on stdout, compile errors on stderr; capture
	// both into one stream so the parse sees everything.
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go tool compile -m failed: %v\n%s", err, out.String())
	}

	var diags []escapeDiag
	for _, line := range strings.Split(out.String(), "\n") {
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		d := escapeDiag{file: absIn(prog.Dir, m[1]), msg: m[4]}
		fmt.Sscanf(m[2], "%d", &d.line)
		fmt.Sscanf(m[3], "%d", &d.col)
		diags = append(diags, d)
	}
	return diags, nil
}

// absIn resolves a possibly-relative filename against the module
// directory, so compiler output (absolute) and fixture FileSet
// positions (test-relative) compare equal.
func absIn(dir, name string) string {
	if filepath.IsAbs(name) || dir == "" {
		return name
	}
	return filepath.Join(dir, name)
}

// owner finds the annotated function whose range contains the
// diagnostic, or nil.
func owner(fns []annotated, d escapeDiag) *annotated {
	for i := range fns {
		fn := &fns[i]
		if fn.file == d.file && d.line >= fn.startLine && d.line <= fn.endLine {
			return fn
		}
	}
	return nil
}

// countsAsAllocation decides whether a -m diagnostic is an allocation
// the annotated function performs (see the package policy).
func countsAsAllocation(msg string) bool {
	if strings.HasPrefix(msg, "moved to heap:") {
		return true
	}
	expr, ok := strings.CutSuffix(msg, " escapes to heap")
	if !ok {
		expr, ok = strings.CutSuffix(msg, " escapes to heap:")
	}
	if !ok {
		return false
	}
	for _, p := range []string{"make(", "new(", "&", "func literal", "[]", "map[", "string(", "append("} {
		if strings.HasPrefix(expr, p) {
			return true
		}
	}
	return false
}

// posFor converts a file:line:col diagnostic position into a token.Pos
// inside the given file, or NoPos.
func posFor(fset *token.FileSet, f *ast.File, line, col int) token.Pos {
	if f == nil {
		return token.NoPos
	}
	tf := fset.File(f.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return token.NoPos
	}
	p := tf.LineStart(line) + token.Pos(col-1)
	if p < tf.Pos(0) || p > token.Pos(tf.Base()+tf.Size()) {
		return tf.LineStart(line)
	}
	return p
}

// growCallAt reports whether the position sits inside a call to a
// grow*-prefixed helper — the amortized realloc allowance.
func growCallAt(f *ast.File, pos token.Pos) bool {
	if f == nil {
		return false
	}
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false // prune subtrees not containing the position
		}
		if call, ok := n.(*ast.CallExpr); ok {
			var name string
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if strings.HasPrefix(name, "grow") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
