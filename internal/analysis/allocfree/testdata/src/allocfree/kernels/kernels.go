// Package kernels covers the allocfree proof shapes: clean kernels,
// escaping allocations, heap-forced locals, and the grow-helper
// amortization allowance.
package kernels

// Sum is steady-state clean: everything stays on the stack.
//
//tsvlint:allocfree
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// ScaleInto writes through a caller-provided buffer: clean.
//
//tsvlint:allocfree
func ScaleInto(dst, src []float64, k float64) {
	for i, x := range src {
		dst[i] = k * x
	}
}

// Fresh allocates a new slice that escapes through the return value.
//
//tsvlint:allocfree
func Fresh(n int) []float64 {
	buf := make([]float64, n) // want "Fresh is annotated //tsvlint:allocfree but the compiler reports: make\(\[\]float64, n\) escapes to heap"
	for i := range buf {
		buf[i] = 1
	}
	return buf
}

// Boxed forces a local onto the heap by returning its address.
//
//tsvlint:allocfree
func Boxed() *int {
	x := 42 // want "Boxed is annotated //tsvlint:allocfree but the compiler reports: moved to heap: x"
	return &x
}

// growF64 is the amortized realloc helper: its make only runs on the
// capacity-miss path of a reused buffer.
func growF64(b []float64, n int) []float64 {
	if cap(b) < n {
		nb := make([]float64, n, n+n/2)
		copy(nb, b[:cap(b)])
		return nb
	}
	return b[:n]
}

// FillGrown reuses a scratch buffer through growF64: the inlined make
// is attributed to the call line but excused by the grow allowance.
//
//tsvlint:allocfree
func FillGrown(scratch []float64, n int) []float64 {
	scratch = growF64(scratch, n)
	for i := range scratch {
		scratch[i] = float64(i)
	}
	return scratch
}

// unexported helpers feeding Sum stay out of scope without the
// directive even when they allocate.
func scratchCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	return out
}
