package goroleak_test

import (
	"testing"

	"tsvstress/internal/analysis/analysistest"
	"tsvstress/internal/analysis/goroleak"
)

func TestSpawnShapes(t *testing.T) {
	a := goroleak.NewAnalyzer(goroleak.Config{
		ScopeSuffixes: []string{"goroleak/spawn"},
	})
	analysistest.Run(t, a, ".", "goroleak/spawn")
}

// TestOutOfScope: a leaky goroutine outside the scoped suffixes must
// be silent — goroleak only polices the serving tiers.
func TestOutOfScope(t *testing.T) {
	a := goroleak.NewAnalyzer(goroleak.Config{
		ScopeSuffixes: []string{"internal/serve"},
	})
	analysistest.Run(t, a, ".", "goroleak/unscoped")
}
