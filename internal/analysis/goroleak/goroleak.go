// Package goroleak requires every go statement in the scoped packages
// to show a provable join or cancel path, and flags timer churn in
// loops.
//
// A spawned goroutine is accepted when its body (the function literal,
// or the resolved same-package callee, closures included) contains at
// least one lifetime signal:
//
//   - sync.WaitGroup.Done / Wait — a join;
//   - any channel operation (send, receive, close, select) — the
//     goroutine is wired to something that can observe or release it;
//   - <-ctx.Done() via context.Context.Done — a cancel path;
//   - context.WithTimeout / WithDeadline / WithCancel — the goroutine
//     bounds its own lifetime.
//
// Anything else is fire-and-forget: nothing can wait for it, stop it,
// or even learn it is stuck — the serve.Close drain and the cluster
// heartbeat both show how cheap the signal is to provide. Goroutines
// whose lifetime is guaranteed by an external mechanism the analyzer
// cannot see (a listener whose Close terminates Serve) carry a
// //tsvlint:ignore goroleak annotation with that justification.
//
// Separately, time.After inside a for/range loop allocates a timer per
// iteration that is not collected until it fires — a slow leak on hot
// loops; hoist a time.NewTimer (serve.admit shows the shape).
//
// Test files are exempt.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tsvstress/internal/analysis"
)

// Config scopes the analyzer to package-path suffixes.
type Config struct {
	ScopeSuffixes []string
}

// NewAnalyzer builds a goroleak analyzer for the given scope. It is a
// package analyzer: goroutine bodies and their same-package callees
// are visible per package, so vettool mode loses nothing.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "goroleak",
		Doc:  "go statements in the serving tiers must have a provable join or cancel path; no time.After in loops",
		Run: func(pass *analysis.Pass) error {
			return run(cfg, pass)
		},
	}
}

// Analyzer is goroleak scoped to the serving, cluster, aging and
// resilience tiers.
var Analyzer = NewAnalyzer(Config{
	ScopeSuffixes: []string{"internal/serve", "internal/cluster", "internal/aging", "internal/resilience", "internal/gateway"},
})

func run(cfg Config, pass *analysis.Pass) error {
	base, _, _ := strings.Cut(pass.Pkg.Path(), " [")
	scoped := false
	for _, s := range cfg.ScopeSuffixes {
		if strings.HasSuffix(base, s) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}

	// Same-package function bodies, for resolving `go s.loop()`.
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					bodies[fn] = fd
				}
			}
		}
	}

	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, bodies, g)
			}
			return true
		})
		checkTimerLoops(pass, file)
	}
	return nil
}

func checkGoStmt(pass *analysis.Pass, bodies map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if callee := analysis.StaticCallee(pass.TypesInfo, g.Call); callee != nil {
			if decl, ok := bodies[callee]; ok {
				body = decl.Body
			}
		}
	}
	if body == nil {
		// Dynamic or out-of-package target: nothing provable here.
		pass.Reportf(g.Pos(), "goroutine runs a function the analyzer cannot see into; spawn a local function with a join or cancel path, or annotate the external lifetime guarantee")
		return
	}
	if !hasLifetimeSignal(pass, bodies, body, make(map[*ast.BlockStmt]bool)) {
		pass.Reportf(g.Pos(), "goroutine has no join or cancel path (no WaitGroup, channel operation, ctx.Done, or bounded context in its body); it can outlive its spawner unobserved")
	}
}

// hasLifetimeSignal walks a goroutine body, descending into closures
// and same-package callees (memoized per body to cut cycles).
func hasLifetimeSignal(pass *analysis.Pass, bodies map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, seen map[*ast.BlockStmt]bool) bool {
	if seen[body] {
		return false
	}
	seen[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// for v := range ch — a receive loop that ends on close.
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if fun, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin && fun.Name == "close" {
					found = true
					return false
				}
			}
			callee := analysis.StaticCallee(pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			if sig := lifetimeCall(callee); sig {
				found = true
				return false
			}
			if decl, ok := bodies[callee]; ok && decl.Body != nil {
				if hasLifetimeSignal(pass, bodies, decl.Body, seen) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// lifetimeCall recognizes calls that are lifetime signals by
// themselves: WaitGroup.Done/Wait, context.Context.Done, and the
// bounded-context constructors.
func lifetimeCall(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sync":
		if fn.Name() == "Done" || fn.Name() == "Wait" {
			return recvNamed(fn) == "WaitGroup"
		}
	case "context":
		switch fn.Name() {
		case "Done":
			return true // context.Context.Done
		case "WithTimeout", "WithDeadline", "WithCancel":
			return true
		}
	}
	return false
}

func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkTimerLoops flags time.After calls lexically inside a for or
// range statement.
func checkTimerLoops(pass *analysis.Pass, file *ast.File) {
	var loopDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(loopBody(n), walk)
			loopDepth--
			return false
		case *ast.CallExpr:
			if loopDepth == 0 {
				return true
			}
			callee := analysis.StaticCallee(pass.TypesInfo, n)
			if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "time" && callee.Name() == "After" {
				pass.Reportf(n.Pos(), "time.After in a loop allocates a timer per iteration that lives until it fires; hoist a time.NewTimer and reuse it")
			}
		}
		return true
	}
	ast.Inspect(file, walk)
}

func loopBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return n
}
