// Package unscoped leaks a goroutine on purpose: its import path is
// outside the analyzer's scope, so no finding may surface.
package unscoped

func leak() {
	go func() {
		for i := 0; ; i++ {
			_ = i
		}
	}()
}
