// Package spawn covers the goroutine lifetime shapes the serving
// tiers use: joined, cancelled, bounded, and fire-and-forget.
package spawn

import (
	"context"
	"sync"
	"time"
)

type server struct {
	stopCh chan struct{}
	workCh chan int
}

// joined: classic WaitGroup fan-out.
func fanOut(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// join by channel send: the spawner can drain it.
func drain(done chan struct{}) {
	go func() {
		defer func() { done <- struct{}{} }()
		work()
	}()
}

// join by close: watchers observe the close.
func watcher(ctx context.Context) chan struct{} {
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		<-ctx.Done()
	}()
	return watcherDone
}

// cancel path through a named same-package method: the loop selects on
// the stop channel.
func (s *server) start() {
	go s.loop()
}

func (s *server) loop() {
	for {
		select {
		case <-s.stopCh:
			return
		case v := <-s.workCh:
			_ = v
		}
	}
}

// bounded lifetime: the goroutine mints its own deadline.
func notify(addr string) {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		ping(ctx, addr)
	}()
}

// fire-and-forget closure: nothing joins it, nothing can stop it.
func leak() {
	go func() { // want "goroutine has no join or cancel path"
		work()
	}()
}

// fire-and-forget through an opaque callee: a function value the
// analyzer cannot see into.
func leakDynamic(f func()) {
	go f() // want "goroutine runs a function the analyzer cannot see into"
}

// timer churn: a fresh timer every iteration.
func pollLeaky(s *server) {
	for {
		select {
		case <-s.stopCh:
			return
		case <-time.After(time.Second): // want "time\.After in a loop"
			work()
		}
	}
}

// hoisted timer: the admit-path shape, no finding.
func pollFixed(s *server) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			work()
			t.Reset(time.Second)
		}
	}
}

// one-shot time.After outside a loop is fine.
func await(s *server) {
	select {
	case <-s.stopCh:
	case <-time.After(time.Second):
	}
}

func work() {}

func ping(ctx context.Context, addr string) {
	_ = ctx
	_ = addr
}
