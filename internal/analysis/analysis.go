// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis model, sized for this repository:
// it defines the Analyzer/Pass/Diagnostic vocabulary, a go-list-based
// package loader, a runner, and the //tsvlint: directive conventions
// the domain analyzers (floatcmp, hotpath, panicboundary, nonfinite,
// unitdoc) build on. cmd/tsvlint drives it both standalone
// (`tsvlint ./...`) and as a `go vet -vettool` backend.
//
// Two analyzer shapes exist:
//
//   - package analyzers (Run) see one type-checked package at a time
//     and work in both standalone and vettool mode;
//   - program analyzers (RunProgram) see every package of the module
//     at once — call-graph checks like panicboundary need cross-package
//     bodies — and run in standalone mode only, where the loader has
//     source for the whole module.
//
// An analyzer may set both: standalone runs prefer the whole-module
// RunProgram, while `go vet -vettool` falls back to Run as the
// single-package approximation (lockorder and ctxflow do this — their
// per-package view still catches in-package inversions and missing
// context parameters, just not cross-package chains).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named static check. At least one of Run or
// RunProgram must be set; when both are, RunProgram wins wherever the
// whole module is loaded and Run covers vettool mode.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tsvlint:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run analyzes a single package.
	Run func(*Pass) error
	// RunProgram analyzes the whole module at once.
	RunProgram func(*ProgramPass) error
}

// Pass carries one package's type-checked syntax to a package analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ProgramPass carries the whole loaded module to a program analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Program  *Program
	Report   func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Package is one type-checked module package inside a Program.
type Package struct {
	// Path is the import path as go list reports it (test variants keep
	// their bracketed suffix, e.g. "tsvstress [tsvstress.test]").
	Path      string
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Program is the set of module packages loaded for program analyzers,
// sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	// Dir is the directory the program was loaded from (absolute when
	// the loader could resolve it). Analyzers that shell out to the go
	// toolchain — allocfree recompiles annotated packages for escape
	// diagnostics — run their commands here so module context resolves.
	Dir string
	// GoVersion is the module's declared language version ("1.22"), or
	// empty when unknown; it pins -lang for reproducing compiles.
	GoVersion string

	byPath map[string]*Package
}

// ByPath returns the package with the given import path, or nil.
func (pr *Program) ByPath(path string) *Package {
	if pr.byPath == nil {
		pr.byPath = make(map[string]*Package, len(pr.Packages))
		for _, p := range pr.Packages {
			pr.byPath[p.Path] = p
		}
	}
	return pr.byPath[path]
}

// NewInfo returns a types.Info with every map the analyzers rely on
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
