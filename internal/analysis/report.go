package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Machine-readable finding output and the findings baseline.
//
// The baseline is the audit trail for legacy findings: CI runs tsvlint
// against the checked-in baseline file and fails only on findings not
// recorded there, so new violations break the build while accepted ones
// stay visible (and stale entries are reported once their finding goes
// away). Entries match on analyzer + file + message, deliberately not
// on line numbers, so unrelated edits to a file do not churn the
// baseline.

// jsonFinding is the -json (and baseline) wire form of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line,omitempty"`
	Column   int    `json:"column,omitempty"`
	Message  string `json:"message"`
}

// relFile rewrites an absolute finding path relative to baseDir (with
// forward slashes), so reports and baselines are machine-independent.
func relFile(baseDir, file string) string {
	if baseDir == "" {
		return file
	}
	rel, err := filepath.Rel(baseDir, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return filepath.ToSlash(rel)
}

func toJSONFindings(baseDir string, findings []Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relFile(baseDir, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	return out
}

// WriteJSON writes the findings as an indented JSON array with paths
// relative to baseDir.
func WriteJSON(w io.Writer, baseDir string, findings []Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toJSONFindings(baseDir, findings))
}

// SARIF 2.1.0 subset: enough structure for code-scanning UIs to ingest
// the findings (one run, one rule per analyzer, physical locations).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the findings as a SARIF 2.1.0 log, declaring one
// rule per analyzer (first line of its Doc as the description).
func WriteSARIF(w io.Writer, baseDir string, analyzers []*Analyzer, findings []Finding) error {
	run := sarifRun{
		Tool:    sarifTool{Driver: sarifDriver{Name: "tsvlint"}},
		Results: []sarifResult{},
	}
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: doc},
		})
	}
	for _, f := range findings {
		line := f.Pos.Line
		if line < 1 {
			line = 1
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relFile(baseDir, f.Pos.Filename)},
				Region:           sarifRegion{StartLine: line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// BaselineEntry records one accepted legacy finding. Reason is the
// audit note saying why it is tolerated rather than fixed.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Reason   string `json:"reason,omitempty"`
}

// Baseline is the checked-in set of accepted findings.
type Baseline struct {
	// Comment documents the file for human readers.
	Comment  string          `json:"comment,omitempty"`
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: baseline %s: %v", path, err)
	}
	return &b, nil
}

// Apply splits findings into those not covered by the baseline (fresh —
// these should fail the build) and reports which baseline entries no
// longer match anything (stale — candidates for removal). A single
// entry covers any number of matching findings.
func (b *Baseline) Apply(baseDir string, findings []Finding) (fresh []Finding, stale []BaselineEntry) {
	used := make([]bool, len(b.Findings))
	for _, f := range findings {
		file := relFile(baseDir, f.Pos.Filename)
		covered := false
		for i, e := range b.Findings {
			if e.Analyzer == f.Analyzer && e.File == file && e.Message == f.Message {
				used[i] = true
				covered = true
			}
		}
		if !covered {
			fresh = append(fresh, f)
		}
	}
	for i, e := range b.Findings {
		if !used[i] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}

// WriteBaselineFile records the findings as the new baseline at path.
// Reasons start empty: whoever accepts a finding writes the
// justification in review.
func WriteBaselineFile(path, baseDir string, findings []Finding) error {
	b := Baseline{
		Comment: "tsvlint findings accepted as legacy; new findings fail CI. " +
			"Every entry needs a reason. Regenerate with tsvlint -write-baseline.",
	}
	b.Findings = []BaselineEntry{}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: f.Analyzer,
			File:     relFile(baseDir, f.Pos.Filename),
			Message:  f.Message,
		})
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
