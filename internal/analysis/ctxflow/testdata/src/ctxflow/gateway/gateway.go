// Package gateway is the scoped tier: every function here that can
// reach engine.MapInto is a request path.
package gateway

import (
	"context"
	"net/http"

	"ctxflow/engine"
)

// evalAll forwards its context into the kernel: compliant.
func evalAll(ctx context.Context, out []float64) error {
	return engine.MapInto(ctx, out)
}

// Handle reaches the kernel with no context parameter and roots a
// fresh context besides: both rules fire.
func Handle(out []float64) error { // want "can reach engine\.MapInto but accepts no context\.Context"
	return evalAll(context.Background(), out) // want "context\.Background\(\) inside a request path"
}

// HandleHTTP rides the handler idiom: *http.Request carries the
// context, so the signature is accepted.
func HandleHTTP(w http.ResponseWriter, r *http.Request) {
	_ = evalAll(r.Context(), nil)
}

// HandleAsync reaches the kernel only from inside a spawned closure —
// still a request path, the closure runs this request's work.
func HandleAsync(out []float64) { // want "can reach engine\.MapInto but accepts no context\.Context"
	done := make(chan error, 1)
	go func() {
		done <- evalAll(context.TODO(), out) // want "context\.TODO\(\) inside a request path"
	}()
	<-done
}

// heartbeat never reaches a kernel: minting a root context for
// genuinely background work is fine.
func heartbeat() context.Context {
	return context.Background()
}
