// Package engine stands in for the evaluation kernel package: MapInto
// is the target the gateway fixtures must thread a context toward.
package engine

import "context"

func MapInto(ctx context.Context, out []float64) error {
	for i := range out {
		if i%1024 == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		out[i] = 1
	}
	return nil
}
