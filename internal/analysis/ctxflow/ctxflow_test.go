package ctxflow_test

import (
	"testing"

	"tsvstress/internal/analysis/analysistest"
	"tsvstress/internal/analysis/ctxflow"
)

// TestGateway loads the engine (kernel) and gateway (scoped tier)
// fixtures as one program: the reach relation crosses the package
// boundary, which is the whole point of the analyzer.
func TestGateway(t *testing.T) {
	a := ctxflow.NewAnalyzer(ctxflow.Config{
		ScopeSuffixes: []string{"ctxflow/gateway"},
		Targets:       []ctxflow.Target{{PkgSuffix: "ctxflow/engine", Name: "MapInto"}},
	})
	analysistest.Run(t, a, ".", "ctxflow/engine", "ctxflow/gateway")
}
