// Package ctxflow enforces cooperative-cancellation plumbing on the
// serving tiers: any function in a scoped package whose static call
// closure reaches an evaluation kernel (core.MapInto, core.EvalTiles,
// the incr flush entry points) is a request path, and request paths
// must carry a context.
//
// Two rules:
//
//  1. A request-path function must accept a context.Context parameter
//     (or an *http.Request, whose Context() is the handler idiom) so
//     cancellation can flow through it. PR 4 threaded ctx through every
//     eval path by hand; this keeps new call chains honest.
//  2. context.Background() and context.TODO() are banned inside
//     request-path functions: minting a fresh root context severs the
//     caller's deadline and cancel signal exactly where it matters.
//     Background work that never reaches a kernel (heartbeats, drop
//     notifications) is out of scope by construction.
//
// Test files are exempt. Reachability is static-call reachability —
// dynamic dispatch does not propagate — so interface seams like
// incr.TileEvaluator rely on their concrete implementations being
// scoped too (cluster.SessionEvaluator is).
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"tsvstress/internal/analysis"
)

// Target names one kernel entry point: a function or method called
// Name declared in a package whose import path ends with PkgSuffix.
type Target struct {
	PkgSuffix string
	Name      string
}

// Config scopes the analyzer.
type Config struct {
	// ScopeSuffixes are the package-path suffixes whose functions are
	// checked.
	ScopeSuffixes []string
	// Targets are the kernel entry points that make a caller a request
	// path.
	Targets []Target
}

// NewAnalyzer builds a ctxflow analyzer for the given scope. Standalone
// runs see cross-package chains; vettool mode checks each package's
// direct and in-package-transitive calls.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "ctxflow",
		Doc:  "request paths (functions reaching core.MapInto/EvalTiles or incr flushes) must accept a context.Context and never mint context.Background/TODO",
		Run: func(pass *analysis.Pass) error {
			prog := &analysis.Program{
				Fset: pass.Fset,
				Packages: []*analysis.Package{{
					Path: pass.Pkg.Path(), Files: pass.Files, Pkg: pass.Pkg, TypesInfo: pass.TypesInfo,
				}},
			}
			return analyze(cfg, prog, pass.Report)
		},
		RunProgram: func(pass *analysis.ProgramPass) error {
			return analyze(cfg, pass.Program, pass.Report)
		},
	}
}

// Analyzer is ctxflow scoped to this repository's serving tiers and
// evaluation kernels.
var Analyzer = NewAnalyzer(Config{
	ScopeSuffixes: []string{"internal/serve", "internal/cluster", "internal/incr", "internal/gateway"},
	Targets: []Target{
		{PkgSuffix: "internal/core", Name: "MapInto"},
		{PkgSuffix: "internal/core", Name: "EvalTiles"},
		{PkgSuffix: "internal/incr", Name: "Flush"},
		{PkgSuffix: "internal/incr", Name: "FlushDegraded"},
	},
})

func analyze(cfg Config, prog *analysis.Program, report func(analysis.Diagnostic)) error {
	bodies := analysis.FuncBodies(prog)

	isTarget := func(fn *types.Func) (string, bool) {
		pkg := fn.Pkg()
		if pkg == nil {
			return "", false
		}
		for _, t := range cfg.Targets {
			if fn.Name() == t.Name && strings.HasSuffix(pkg.Path(), t.PkgSuffix) {
				short := t.PkgSuffix[strings.LastIndex(t.PkgSuffix, "/")+1:]
				return short + "." + t.Name, true
			}
		}
		return "", false
	}

	// reaches memoizes the first kernel each function's static closure
	// hits ("" = none). Function literals count as part of their
	// enclosing function: a handler that spawns or defers a closure
	// calling MapInto is still a request path.
	reaches := make(map[*types.Func]string)
	onStack := make(map[*types.Func]bool)
	var reach func(fn *types.Func) string
	reach = func(fn *types.Func) string {
		if got, ok := reaches[fn]; ok {
			return got
		}
		if onStack[fn] {
			return ""
		}
		decl, ok := bodies[fn]
		if !ok || decl.Body == nil {
			return ""
		}
		info := analysis.InfoFor(prog, fn)
		if info == nil {
			return ""
		}
		onStack[fn] = true
		found := ""
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if found != "" {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.StaticCallee(info, call)
			if callee == nil {
				return true
			}
			if name, ok := isTarget(callee); ok {
				found = name
				return false
			}
			if via := reach(callee); via != "" {
				found = via
				return false
			}
			return true
		})
		delete(onStack, fn)
		reaches[fn] = found
		return found
	}

	inScope := func(pkgPath string) bool {
		// Test variants ("pkg [pkg.test]") inherit their base path.
		base, _, _ := strings.Cut(pkgPath, " [")
		for _, s := range cfg.ScopeSuffixes {
			if strings.HasSuffix(base, s) {
				return true
			}
		}
		return false
	}

	for _, pkg := range prog.Packages {
		if !inScope(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			if analysis.IsTestFile(prog.Fset, file.Pos()) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				via := reach(fn)
				if via == "" {
					continue
				}
				if !acceptsContext(fn) {
					report(analysis.Diagnostic{
						Pos: fd.Name.Pos(),
						Message: "can reach " + via +
							" but accepts no context.Context (or *http.Request) to forward cancellation through",
					})
				}
				reportRootContexts(pkg.TypesInfo, fd, via, report)
			}
		}
	}
	return nil
}

// acceptsContext reports whether the function signature carries a
// context.Context or *http.Request parameter (receiver excluded — the
// context must flow per call, not per value).
func acceptsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isContextType(t) || isHTTPRequestPtr(t) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// reportRootContexts flags context.Background()/TODO() calls lexically
// inside a request-path function (closures included — they run on the
// same request).
func reportRootContexts(info *types.Info, fd *ast.FuncDecl, via string, report func(analysis.Diagnostic)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.StaticCallee(info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
			return true
		}
		if name := callee.Name(); name == "Background" || name == "TODO" {
			report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: "context." + name + "() inside a request path (reaches " + via +
					") severs the caller's deadline and cancellation; thread the incoming ctx instead",
			})
		}
		return true
	})
}
