package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// tsvlint directive conventions (DESIGN.md §9):
//
//	//tsvlint:hotpath
//	    File-level marker: the file's loops are performance-critical;
//	    the hotpath analyzer enforces its allocation/transcendental
//	    rules on every function in the file.
//
//	//tsvlint:apiboundary
//	    File-level marker: the file declares public API entry points;
//	    the nonfinite analyzer requires error-returning functions with
//	    float parameters to reachably validate finiteness.
//
//	//tsvlint:ignore name1,name2 reason...
//	    Line-level suppression: diagnostics from the named analyzers on
//	    this line (or the line directly below, for a comment on its own
//	    line) are dropped. A reason is required.
//
//	//tsvlint:lockorder A < B
//	    Lock-order declaration: whenever the locks named A and B are
//	    held together, A must be acquired first. Names are
//	    "Type.field" for struct-field mutexes ("session.mu") or the
//	    bare identifier for package-level ones. The lockorder analyzer
//	    reports any acquisition path in the reverse order.
//
//	//tsvlint:allocfree
//	    Function-level marker (in the doc comment): the allocfree
//	    analyzer proves the function steady-state allocation-free
//	    against the compiler's escape diagnostics.

const directivePrefix = "//tsvlint:"

// FileHasDirective reports whether f carries the file-level directive
// (e.g. "hotpath") anywhere in its comments.
func FileHasDirective(f *ast.File, name string) bool {
	want := directivePrefix + name
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if text == want || strings.HasPrefix(text, want+" ") {
				return true
			}
		}
	}
	return false
}

// ignoreDirective is one parsed //tsvlint:ignore comment.
type ignoreDirective struct {
	line      int
	analyzers []string
	hasReason bool
}

// IgnoreIndex maps source lines to the analyzers suppressed there.
type IgnoreIndex struct {
	fset    *token.FileSet
	ignores map[string][]ignoreDirective // filename -> directives
}

// NewIgnoreIndex scans the files' comments for //tsvlint:ignore
// directives.
func NewIgnoreIndex(fset *token.FileSet, files []*ast.File) *IgnoreIndex {
	ix := &IgnoreIndex{fset: fset, ignores: make(map[string][]ignoreDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, directivePrefix+"ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				ix.ignores[pos.Filename] = append(ix.ignores[pos.Filename], ignoreDirective{
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
					hasReason: len(fields) > 1,
				})
			}
		}
	}
	return ix
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by an ignore directive on the same line or the line
// directly above.
func (ix *IgnoreIndex) Suppressed(analyzer string, pos token.Pos) bool {
	p := ix.fset.Position(pos)
	for _, d := range ix.ignores[p.Filename] {
		if d.line != p.Line && d.line != p.Line-1 {
			continue
		}
		for _, name := range d.analyzers {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// LockOrderRule is one parsed //tsvlint:lockorder declaration: the
// lock named Before must be acquired before the lock named After
// whenever both are held.
type LockOrderRule struct {
	Before string
	After  string
	Pos    token.Pos // of the directive comment
}

// ParseLockOrder parses the payload of a //tsvlint:lockorder comment
// (everything after the directive word), expecting exactly "A < B".
func ParseLockOrder(rest string) (before, after string, err error) {
	lt := strings.Count(rest, "<")
	if lt != 1 {
		return "", "", fmt.Errorf("want exactly one %q separator, got %d", "<", lt)
	}
	left, right, _ := strings.Cut(rest, "<")
	before = strings.TrimSpace(left)
	after = strings.TrimSpace(right)
	switch {
	case before == "":
		return "", "", fmt.Errorf("missing lock name before %q", "<")
	case after == "":
		return "", "", fmt.Errorf("missing lock name after %q", "<")
	case len(strings.Fields(before)) > 1:
		return "", "", fmt.Errorf("lock name %q contains spaces", before)
	case len(strings.Fields(after)) > 1:
		return "", "", fmt.Errorf("lock name %q contains spaces", after)
	case before == after:
		return "", "", fmt.Errorf("%q is ordered against itself", before)
	}
	return before, after, nil
}

// LockOrderDirectives scans the files' comments for //tsvlint:lockorder
// declarations, returning the parsed rules plus a diagnostic at each
// malformed directive.
func LockOrderDirectives(files []*ast.File) (rules []LockOrderRule, malformed []Diagnostic) {
	const word = directivePrefix + "lockorder"
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, word)
				if !ok {
					continue
				}
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // a different directive sharing the prefix
				}
				before, after, err := ParseLockOrder(rest)
				if err != nil {
					malformed = append(malformed, Diagnostic{
						Pos:     c.Pos(),
						Message: fmt.Sprintf("malformed //tsvlint:lockorder directive (want \"A < B\"): %v", err),
					})
					continue
				}
				rules = append(rules, LockOrderRule{Before: before, After: after, Pos: c.Pos()})
			}
		}
	}
	return rules, malformed
}

// IsTestFile reports whether the file at pos is a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
