package panicboundary_test

import (
	"testing"

	"tsvstress/internal/analysis/analysistest"
	"tsvstress/internal/analysis/panicboundary"
)

func TestPanicboundary(t *testing.T) {
	a := panicboundary.NewAnalyzer(panicboundary.Config{
		RootPkg:        "pbroot",
		TargetSuffixes: []string{"pbkernel"},
	})
	analysistest.Run(t, a, ".", "pbkernel", "pbroot")
}
