// Package panicboundary defines a program analyzer that walks the
// static call graph from every exported entry point of the root
// package — exported functions plus the exported methods of every
// type the root package re-exports — and flags reachable panic sites
// in the numerical kernels (internal/linalg, internal/sparse,
// internal/spatial), unless the entry point reachably validates its
// inputs first.
//
// The kernels keep panics for internal-invariant violations (dimension
// mismatches that can only arise from a bug), which is fine exactly as
// long as every public path in validates user input before reaching
// them; this analyzer pins that contract.
package panicboundary

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tsvstress/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// RootPkg is the import path of the public API package.
	RootPkg string
	// TargetSuffixes are import-path suffixes of the kernel packages
	// whose panics must not be publicly reachable unvalidated.
	TargetSuffixes []string
}

// DefaultConfig pins the repository's API boundary.
var DefaultConfig = Config{
	RootPkg:        "tsvstress",
	TargetSuffixes: []string{"internal/linalg", "internal/sparse", "internal/spatial"},
}

// Analyzer is panicboundary with the repository scope.
var Analyzer = NewAnalyzer(DefaultConfig)

// NewAnalyzer builds a panicboundary analyzer for the given scope.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "panicboundary",
		Doc:  "flag kernel panics reachable from unvalidated exported API entry points",
		RunProgram: func(pass *analysis.ProgramPass) error {
			return run(pass, cfg)
		},
	}
}

func run(pass *analysis.ProgramPass, cfg Config) error {
	prog := pass.Program
	root := prog.ByPath(cfg.RootPkg)
	if root == nil {
		// Not an error: linting a subset (or a foreign module) simply
		// loads no API-boundary entry points to walk from.
		return nil
	}
	bodies := analysis.FuncBodies(prog)
	panicSites := collectPanicSites(prog, bodies, cfg.TargetSuffixes)

	for _, entry := range entryPoints(root) {
		if _, ok := bodies[entry]; !ok {
			continue
		}
		var hits []panicSite
		analysis.Reachable(prog, bodies, entry, func(fn *types.Func, decl *ast.FuncDecl) bool {
			if sites, ok := panicSites[fn]; ok {
				hits = append(hits, sites...)
			}
			return true
		})
		if len(hits) == 0 {
			continue
		}
		if analysis.ReachesValidation(prog, bodies, entry) {
			continue
		}
		sort.Slice(hits, func(i, j int) bool { return hits[i].fn.FullName() < hits[j].fn.FullName() })
		pass.Reportf(entryPos(bodies, entry),
			"exported %s can reach panic in %s without validating inputs first; validate at the boundary or convert the kernel to return an error",
			entry.Name(), hits[0].fn.FullName())
	}
	return nil
}

type panicSite struct {
	fn  *types.Func
	pos token.Pos
}

// collectPanicSites finds every declared function in a target package
// whose body contains an explicit panic call.
func collectPanicSites(prog *analysis.Program, bodies map[*types.Func]*ast.FuncDecl, suffixes []string) map[*types.Func][]panicSite {
	sites := make(map[*types.Func][]panicSite)
	for fn, decl := range bodies {
		pkg := fn.Pkg()
		if pkg == nil || !pathMatches(pkg.Path(), suffixes) {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				info := analysis.InfoFor(prog, fn)
				if info != nil {
					if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
						return true
					}
				}
				sites[fn] = append(sites[fn], panicSite{fn: fn, pos: call.Pos()})
			}
			return true
		})
	}
	return sites
}

func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// entryPoints returns the root package's exported functions plus the
// exported methods of every named type visible through its scope
// (covering the alias-re-export pattern the public surface uses).
func entryPoints(root *analysis.Package) []*types.Func {
	var entries []*types.Func
	seen := make(map[*types.Func]bool)
	add := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			entries = append(entries, fn)
		}
	}
	scope := root.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch obj := obj.(type) {
		case *types.Func:
			add(obj)
		case *types.TypeName:
			named, ok := types.Unalias(obj.Type()).(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				if m := named.Method(i); m.Exported() {
					add(m)
				}
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].FullName() < entries[j].FullName() })
	return entries
}

func entryPos(bodies map[*types.Func]*ast.FuncDecl, fn *types.Func) token.Pos {
	if decl, ok := bodies[fn]; ok {
		return decl.Name.Pos()
	}
	return fn.Pos()
}
