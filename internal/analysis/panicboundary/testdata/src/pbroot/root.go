// Package pbroot is the public-API boundary of the panicboundary
// fixture.
package pbroot

import (
	"errors"

	"pbkernel"
)

// Unguarded reaches the kernel panic with no validation on the way.
func Unguarded(n int) int { // want "exported Unguarded can reach panic in pbkernel.Solve"
	return pbkernel.Solve(n)
}

// Guarded validates before entering the kernel.
func Guarded(n int) (int, error) {
	if err := validateSize(n); err != nil {
		return 0, err
	}
	return pbkernel.Solve(n), nil
}

// Harmless only calls a panic-free kernel function.
func Harmless(n int) int { return pbkernel.Clean(n) }

func validateSize(n int) error {
	if n < 0 {
		return errors.New("pbroot: negative size")
	}
	return nil
}
