// Package pbkernel is a stand-in numerical kernel for the
// panicboundary fixture: it keeps a panic for invariant violations.
package pbkernel

// Solve doubles n and panics on a negative size.
func Solve(n int) int {
	if n < 0 {
		panic("pbkernel: negative size")
	}
	return 2 * n
}

// Clean has no panic at all.
func Clean(n int) int { return n + 1 }
