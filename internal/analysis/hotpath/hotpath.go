// Package hotpath defines an analyzer that guards the per-point cost
// model of files marked //tsvlint:hotpath (the tile-batched Stage I /
// Stage II engines and the spatial index — the source of PR 1's
// batched-vs-pointwise speedup). In a marked file it forbids:
//
//   - math.Atan2 and math.Pow calls: the engines derive rotations from
//     relative vectors (cos φ = dx/r) and powers from recurrences, and
//     a single Atan2 per contribution is what the batched rewrite
//     removed;
//   - capturing closures outside `go`/`defer` statements: a capture
//     forces heap allocation per construction, and escapes inliner
//     budgets — worker-spawn closures are exempt because they amortize
//     over a whole tile queue;
//   - map iteration: nondeterministic order and hash-bucket walking
//     have no place in a per-point loop;
//   - append to a local slice with no visible preallocation: growth
//     reallocations inside tile loops destroy the zero-steady-state-
//     allocation property. Appends to parameters, receivers and their
//     fields are trusted (callers own the amortization, e.g.
//     Index.AppendNear and the pooled scratch buffers), as are locals
//     assigned from make(len, cap), a [:0] reslice, or a grow helper.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"tsvstress/internal/analysis"
)

// Analyzer enforces the hot-path cost rules in marked files.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbid math.Atan2/math.Pow, capturing closures, map iteration and unpreallocated append in //tsvlint:hotpath files",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if !analysis.FileHasDirective(f, "hotpath") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	pre := preallocated(pass, fd)

	// Walk with enough context to know whether a FuncLit sits directly
	// under a go or defer statement.
	var deferred []ast.Node // parents stack
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			deferred = deferred[:len(deferred)-1]
			return true
		}
		deferred = append(deferred, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, pre, fd, n)
		case *ast.FuncLit:
			if !spawnPosition(deferred) && captures(pass, fd, n) {
				pass.Reportf(n.Pos(), "capturing closure in hot path; hoist the state or restructure the loop")
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Range, "map iteration in hot path; use a slice with deterministic order")
				}
			}
		}
		return true
	})
}

// spawnPosition reports whether the node on top of the stack is the
// immediate call of a go or defer statement (go func(){...}() /
// defer func(){...}()).
func spawnPosition(stack []ast.Node) bool {
	// stack: ... [GoStmt|DeferStmt] CallExpr FuncLit
	if len(stack) < 3 {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok || call.Fun != stack[len(stack)-1] {
		return false
	}
	switch s := stack[len(stack)-3].(type) {
	case *ast.GoStmt:
		return s.Call == call
	case *ast.DeferStmt:
		return s.Call == call
	}
	return false
}

func checkCall(pass *analysis.Pass, pre map[string]bool, fd *ast.FuncDecl, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "math" {
			if fn.Name() == "Atan2" || fn.Name() == "Pow" {
				pass.Reportf(call.Pos(), "math.%s in hot path; derive angles from vector components / powers from recurrences", fn.Name())
			}
		}
	case *ast.Ident:
		if isBuiltin(pass.TypesInfo, fun, "append") && len(call.Args) > 0 {
			checkAppend(pass, pre, fd, call)
		}
	}
}

func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

func checkAppend(pass *analysis.Pass, pre map[string]bool, fd *ast.FuncDecl, call *ast.CallExpr) {
	dst := call.Args[0]
	path, root := selectorPath(dst)
	if root == nil {
		pass.Reportf(call.Pos(), "append to a computed destination in hot path; preallocate a named buffer")
		return
	}
	if obj := pass.TypesInfo.Uses[root]; obj != nil && isParamOrReceiver(obj, pass.TypesInfo, fd) {
		return // caller-owned buffer: amortization is the caller's contract
	}
	if pre[path] {
		return
	}
	pass.Reportf(call.Pos(), "append to %s without visible preallocation in hot path; make(len, cap), reslice [:0], or reuse a scratch buffer", path)
}

// preallocated scans the function for assignments that establish
// amortized capacity: x = make(T, n, c) / make(T, n) with n > 0 known,
// x = x[:0], or x = grow*(...). Keys are selector-path strings.
func preallocated(pass *analysis.Pass, fd *ast.FuncDecl) map[string]bool {
	pre := make(map[string]bool)
	mark := func(lhs, rhs ast.Expr) {
		path, root := selectorPath(lhs)
		if root == nil || !preallocating(pass, rhs) {
			return
		}
		pre[path] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					mark(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					mark(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return pre
}

// preallocating reports whether rhs visibly supplies capacity.
func preallocating(pass *analysis.Pass, rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.SliceExpr:
		// x[:0] (or any reslice of an existing buffer).
		return true
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			if isBuiltin(pass.TypesInfo, fun, "make") {
				return len(e.Args) >= 2 // make with explicit length/capacity
			}
			return strings.HasPrefix(strings.ToLower(fun.Name), "grow")
		case *ast.SelectorExpr:
			return strings.HasPrefix(strings.ToLower(fun.Sel.Name), "grow")
		}
	}
	return false
}

// selectorPath renders a plain ident/selector chain (x, x.f.g) as a
// key and returns its root identifier; any other destination shape
// returns nil.
func selectorPath(e ast.Expr) (string, *ast.Ident) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, e
	case *ast.SelectorExpr:
		path, root := selectorPath(e.X)
		if root == nil {
			return "", nil
		}
		return path + "." + e.Sel.Name, root
	}
	return "", nil
}

// captures reports whether the function literal references any
// variable declared outside it (other than package-level ones):
// exactly the captures that force a heap-allocated closure.
func captures(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable: linked, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
			return false
		}
		return true
	})
	return found
}

// isParamOrReceiver reports whether obj is a parameter or the receiver
// of fd.
func isParamOrReceiver(obj types.Object, info *types.Info, fd *ast.FuncDecl) bool {
	check := func(fields *ast.FieldList) bool {
		if fields == nil {
			return false
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				if info.Defs[name] == obj {
					return true
				}
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params)
}
