//tsvlint:hotpath

// Package hotpathtest is the hotpath fixture: this file is marked.
package hotpathtest

import "math"

type index struct{ buckets [][]int32 }

func flagged(pts []float64, m map[int]float64, ix *index) float64 {
	sum := math.Atan2(1, 2) // want "math.Atan2 in hot path"
	sum += math.Pow(2, 8)   // want "math.Pow in hot path"

	var out []int
	out = append(out, 1) // want "append to out without visible preallocation"

	ix.buckets[0] = append(ix.buckets[0], 3) // want "append to a computed destination"

	add := func() { sum++ } // want "capturing closure in hot path"
	add()

	for k := range m { // want "map iteration in hot path"
		sum += float64(k)
	}
	_ = out
	return sum
}

func allowed(dst []int32, pts []float64) []int32 {
	buf := make([]int32, 0, len(pts))
	buf = append(buf, 1) // preallocated local: allowed
	dst = append(dst, 2) // parameter: the caller owns amortization

	scratch := buf[:0]
	scratch = append(scratch, 3) // reslice of an existing buffer: allowed

	go func() { _ = pts }() // worker spawn: allowed even though it captures

	double := func(x int32) int32 { return 2 * x } // non-capturing: allowed
	_ = double(1)
	_ = scratch
	return dst
}

func (ix *index) grow(n int) []int32 { return make([]int32, 0, n) }

func growHelper(ix *index, n int) []int32 {
	b := ix.grow(n)
	b = append(b, 1) // grow helper establishes capacity: allowed
	return b
}
