// This file carries no //tsvlint:hotpath marker: the same constructs
// the analyzer forbids in a.go are fine here.
package hotpathtest

import "math"

func unmarked(m map[int]float64) float64 {
	var out []float64
	out = append(out, math.Pow(2, 2), math.Atan2(1, 1))
	for _, v := range m {
		out = append(out, v)
	}
	sum := 0.0
	acc := func() { sum++ }
	acc()
	return out[0] + sum
}
