package hotpath_test

import (
	"testing"

	"tsvstress/internal/analysis/analysistest"
	"tsvstress/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, ".", "hotpathtest")
}
