package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
)

// Finding is one resolved diagnostic: a position plus the analyzer
// that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// RunAnalyzers executes every analyzer over the program — package
// analyzers per package, program analyzers once — applies the
// //tsvlint:ignore suppressions, and returns the surviving findings
// sorted by position.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		diags, err := runOne(prog, a)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		findings = append(findings, diags...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func runOne(prog *Program, a *Analyzer) ([]Finding, error) {
	var findings []Finding
	collect := func(pkg *Package) func(Diagnostic) {
		ix := NewIgnoreIndex(prog.Fset, pkg.Files)
		return func(d Diagnostic) {
			if ix.Suppressed(a.Name, d.Pos) {
				return
			}
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Pos:      prog.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
	}
	switch {
	case a.RunProgram != nil:
		// Preferred over Run when both are set: the whole-module view
		// sees cross-package chains the per-package fallback cannot.
		// Program analyzers report into whichever package owns the
		// position; build one suppression index over everything.
		var all []Finding
		var allFiles []*ast.File
		for _, pkg := range prog.Packages {
			allFiles = append(allFiles, pkg.Files...)
		}
		ixAll := NewIgnoreIndex(prog.Fset, allFiles)
		pass := &ProgramPass{
			Analyzer: a,
			Program:  prog,
			Report: func(d Diagnostic) {
				if ixAll.Suppressed(a.Name, d.Pos) {
					return
				}
				all = append(all, Finding{
					Analyzer: a.Name,
					Pos:      prog.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if err := a.RunProgram(pass); err != nil {
			return nil, err
		}
		findings = append(findings, all...)
	case a.Run != nil:
		for _, pkg := range prog.Packages {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				Report:    collect(pkg),
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("analyzer %s has neither Run nor RunProgram", a.Name)
	}
	return findings, nil
}

// PrintFindings writes findings one per line and returns how many were
// written.
func PrintFindings(w io.Writer, findings []Finding) int {
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	return len(findings)
}
