// Package floatcmptest is the floatcmp fixture.
package floatcmptest

type stress struct{ XX, YY float64 }

func computed(a, b float64, s, t stress) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	if a != b { // want "floating-point != comparison"
		return true
	}
	if s == t { // want "floating-point == comparison"
		return true
	}
	if a*2 == b/3 { // want "floating-point == comparison"
		return true
	}
	return false
}

func exactConstants(a, b float64) bool {
	if a == 0 { // exactly representable: allowed
		return true
	}
	if b != 0.5 { // exactly representable: allowed
		return true
	}
	if a-b == 0 { // zero on one side: allowed
		return true
	}
	if a == 0.1 { // constant literal (recorded at float64 precision): allowed
		return true
	}
	return false
}

func suppressed(a, b float64) bool {
	//tsvlint:ignore floatcmp fixture: identity compare on a verbatim copy
	return a == b
}

func integers(n, m int) bool { return n == m } // not floats: allowed
