// Package floatcmp defines an analyzer that forbids == and != on
// floating-point values outside the approved epsilon helpers.
//
// Rounding makes direct equality on computed floats meaningless — the
// engine's parity guarantees are stated as ≤ 1e-9 MPa bounds, never as
// bit equality — so comparisons must go through
// tsvstress/internal/floats (AlmostEqual, WithinMPa). Two comparison
// shapes remain legal:
//
//   - comparison against a compile-time constant that is exactly
//     representable in the operand's type (0, 1, 0.5, …): these are
//     sentinel tests, not tolerance tests — e.g. the hot-path r == 0
//     branch for a point sitting exactly on a TSV center;
//   - anything inside internal/floats itself or a _test.go file, where
//     exact comparison against a freshly stored constant is idiomatic.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"tsvstress/internal/analysis"
)

// Analyzer flags float equality comparisons outside the epsilon
// helpers.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= on floating-point values outside approved epsilon helpers (use internal/floats)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/floats") {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !floatish(pass.TypesInfo, cmp.X) && !floatish(pass.TypesInfo, cmp.Y) {
				return true
			}
			if exactConst(pass.TypesInfo, cmp.X) || exactConst(pass.TypesInfo, cmp.Y) {
				return true
			}
			pass.Reportf(cmp.OpPos,
				"floating-point %s comparison; use internal/floats.AlmostEqual/WithinMPa or compare against an exactly representable constant",
				cmp.Op)
			return true
		})
	}
	return nil
}

// floatish reports whether the expression's type contains
// floating-point components: a float, a complex, or a struct/array
// built from them (struct equality compares the float fields).
func floatish(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return containsFloat(tv.Type, 0)
}

func containsFloat(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsFloat(u.Elem(), depth+1)
	}
	return false
}

// exactConst reports whether e is a compile-time constant whose value
// converts to float64 without rounding (and, for struct comparisons,
// never: constants are only basic-typed).
func exactConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	_, exact := constant.Float64Val(v)
	return exact
}
