package floatcmp_test

import (
	"testing"

	"tsvstress/internal/analysis/analysistest"
	"tsvstress/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, ".", "floatcmptest")
}
