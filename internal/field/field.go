// Package field provides simulation-point grids and stress-field
// storage: the regular sampling lattices the paper's "simulation
// points" live on, line scans for figure-style comparisons, and CSV
// export.
package field

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"tsvstress/internal/floats"
	"tsvstress/internal/geom"
	"tsvstress/internal/tensor"
)

// Grid is a regular lattice of simulation points over a rectangle.
type Grid struct {
	Region geom.Rect
	NX, NY int
	pts    []geom.Point
}

// NewGrid builds a lattice with the given point spacing. Points are
// placed at cell centers so none sits exactly on the region boundary.
func NewGrid(region geom.Rect, spacing float64) (*Grid, error) {
	if !region.Valid() || region.Area() <= 0 {
		return nil, fmt.Errorf("field: invalid region %+v", region)
	}
	if !floats.IsFinite(spacing) || spacing <= 0 {
		return nil, fmt.Errorf("field: spacing %g must be positive and finite", spacing)
	}
	nx := int(region.W() / spacing)
	ny := int(region.H() / spacing)
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	g := &Grid{Region: region, NX: nx, NY: ny}
	dx := region.W() / float64(nx)
	dy := region.H() / float64(ny)
	g.pts = make([]geom.Point, 0, nx*ny)
	for j := 0; j < ny; j++ {
		y := region.Min.Y + (float64(j)+0.5)*dy
		for i := 0; i < nx; i++ {
			g.pts = append(g.pts, geom.Pt(region.Min.X+(float64(i)+0.5)*dx, y))
		}
	}
	return g, nil
}

// Points returns the lattice points in row-major order. The slice is
// shared; callers must not mutate it.
func (g *Grid) Points() []geom.Point { return g.pts }

// Len returns the number of points.
func (g *Grid) Len() int { return len(g.pts) }

// At returns point (i, j).
func (g *Grid) At(i, j int) geom.Point { return g.pts[j*g.NX+i] }

// Line returns n evenly spaced points from a to b inclusive.
func Line(a, b geom.Point, n int) []geom.Point {
	if n < 2 {
		return []geom.Point{a}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		t := float64(i) / float64(n-1)
		pts[i] = geom.Pt(a.X+(b.X-a.X)*t, a.Y+(b.Y-a.Y)*t)
	}
	return pts
}

// Mask selects a subset of grid points; Masked applies it.
type Mask func(p geom.Point) bool

// Masked returns the points for which every mask returns true.
func Masked(pts []geom.Point, masks ...Mask) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		keep := true
		for _, m := range masks {
			if !m(p) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, p)
		}
	}
	return out
}

// OutsideTSVs returns a mask that rejects points inside any TSV
// footprint (distance < rPrime from a center) — simulation points are
// device-layer silicon locations (DESIGN.md §2).
func OutsideTSVs(pl *geom.Placement, rPrime float64) Mask {
	return func(p geom.Point) bool {
		_, d := pl.NearestTSV(p)
		return d >= rPrime
	}
}

// WithinAnyTSV returns a mask that keeps only points within radius of
// some TSV center — the paper's "critical region".
func WithinAnyTSV(pl *geom.Placement, radius float64) Mask {
	return func(p geom.Point) bool {
		_, d := pl.NearestTSV(p)
		return d <= radius
	}
}

// WriteCSV writes "x,y,<columns...>" rows for one or more stress fields
// sampled at pts; columns lists the tensor components to emit (see
// tensor.Stress.Component) prefixed per field name.
func WriteCSV(w io.Writer, pts []geom.Point, fields map[string][]tensor.Stress, columns []string) error {
	// Deterministic field order: sort names.
	names := make([]string, 0, len(fields))
	for name, vals := range fields {
		if len(vals) != len(pts) {
			return fmt.Errorf("field: %q has %d values for %d points", name, len(vals), len(pts))
		}
		names = append(names, name)
	}
	sort.Strings(names)
	// Buffer the writer and assemble each row with strconv appends: the
	// per-value Fprintf calls this replaces dominated export time for
	// large grids.
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("x,y"); err != nil {
		return err
	}
	for _, name := range names {
		for _, c := range columns {
			if _, err := fmt.Fprintf(bw, ",%s_%s", name, c); err != nil {
				return err
			}
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	row := make([]byte, 0, 16*(2+len(names)*len(columns)))
	for i, p := range pts {
		row = row[:0]
		row = strconv.AppendFloat(row, p.X, 'g', 6, 64)
		row = append(row, ',')
		row = strconv.AppendFloat(row, p.Y, 'g', 6, 64)
		for _, name := range names {
			s := fields[name][i]
			for _, c := range columns {
				v, err := s.Component(c)
				if err != nil {
					return err
				}
				row = append(row, ',')
				row = strconv.AppendFloat(row, v, 'g', 6, 64)
			}
		}
		row = append(row, '\n')
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}
