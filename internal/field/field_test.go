package field

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/tensor"
)

func TestNewGridValidation(t *testing.T) {
	r := geom.RectAround(geom.Pt(0, 0), 10, 10)
	if _, err := NewGrid(r, 0); err == nil {
		t.Error("zero spacing should fail")
	}
	if _, err := NewGrid(geom.Rect{}, 1); err == nil {
		t.Error("empty region should fail")
	}
}

func TestGridPoints(t *testing.T) {
	r := geom.RectAround(geom.Pt(0, 0), 10, 4)
	g, err := NewGrid(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != 10 || g.NY != 4 || g.Len() != 40 {
		t.Fatalf("grid dims %dx%d len %d", g.NX, g.NY, g.Len())
	}
	// All points inside the region, at cell centers.
	for _, p := range g.Points() {
		if !r.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
	if got := g.At(0, 0); got != geom.Pt(-4.5, -1.5) {
		t.Errorf("At(0,0) = %v", got)
	}
	if got := g.At(9, 3); got != geom.Pt(4.5, 1.5) {
		t.Errorf("At(9,3) = %v", got)
	}
}

func TestLine(t *testing.T) {
	pts := Line(geom.Pt(0, 0), geom.Pt(10, 0), 11)
	if len(pts) != 11 || pts[0] != geom.Pt(0, 0) || pts[10] != geom.Pt(10, 0) {
		t.Fatalf("Line = %v", pts)
	}
	if pts[5] != geom.Pt(5, 0) {
		t.Errorf("midpoint = %v", pts[5])
	}
	if got := Line(geom.Pt(1, 2), geom.Pt(9, 9), 1); len(got) != 1 {
		t.Error("n<2 should return the start point")
	}
}

func TestMasks(t *testing.T) {
	pl := geom.NewPlacement(geom.Pt(0, 0))
	outside := OutsideTSVs(pl, 3)
	critical := WithinAnyTSV(pl, 3.3)
	if outside(geom.Pt(1, 0)) {
		t.Error("point inside TSV should be rejected")
	}
	if !outside(geom.Pt(4, 0)) {
		t.Error("point outside TSV should pass")
	}
	if !critical(geom.Pt(3.2, 0)) || critical(geom.Pt(4, 0)) {
		t.Error("critical ring mask wrong")
	}
	pts := []geom.Point{{X: 1, Y: 0}, {X: 3.1, Y: 0}, {X: 5, Y: 0}}
	kept := Masked(pts, outside, critical)
	if len(kept) != 1 || kept[0] != (geom.Point{X: 3.1, Y: 0}) {
		t.Errorf("Masked = %v", kept)
	}
}

func TestWriteCSV(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 2}}
	fields := map[string][]tensor.Stress{
		"fem": {{XX: 1, YY: 2, XY: 3}, {XX: 4}},
		"ls":  {{XX: 10}, {XX: 40}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts, fields, []string{"xx", "vm"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "x,y,fem_xx,fem_vm,ls_xx,ls_vm" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,1,") {
		t.Errorf("row = %q", lines[1])
	}
	// Mismatched length errors.
	bad := map[string][]tensor.Stress{"x": {{}}}
	if err := WriteCSV(&buf, pts, bad, []string{"xx"}); err == nil {
		t.Error("length mismatch should fail")
	}
	// Unknown column errors.
	if err := WriteCSV(&buf, pts, fields, []string{"nope"}); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestGridSpacingNotDivisible(t *testing.T) {
	g, err := NewGrid(geom.RectAround(geom.Pt(0, 0), 10, 10), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != 3 || g.NY != 3 {
		t.Errorf("grid %dx%d", g.NX, g.NY)
	}
	// Spacing adjusts so points stay centered.
	var sumX float64
	for _, p := range g.Points() {
		sumX += p.X
	}
	if math.Abs(sumX) > 1e-9 {
		t.Error("points not centered")
	}
}
