// Package metrics implements the error statistics of the paper's
// evaluation: average absolute error and average error rate between a
// method's stress field and the FEM golden, restricted to simulation
// points whose golden intensity exceeds a threshold, over a monitored
// or critical region (Section 5).
package metrics

import (
	"fmt"
	"math"

	"tsvstress/internal/floats"
	"tsvstress/internal/tensor"
)

// Component is a scalar extracted from a stress tensor for comparison.
type Component func(tensor.Stress) float64

// SigmaXX extracts σxx in MPa, the component of Tables 1, 2 and 4.
func SigmaXX(s tensor.Stress) float64 { return s.XX }

// SigmaYY extracts σyy in MPa.
func SigmaYY(s tensor.Stress) float64 { return s.YY }

// VonMises extracts the von Mises stress in MPa, the reliability metric
// of Tables 2, 3 and 5.
func VonMises(s tensor.Stress) float64 { return s.VonMises() }

// MaxTensile extracts the maximum tensile stress in MPa (alternative
// reliability metric mentioned in the paper's conclusion).
func MaxTensile(s tensor.Stress) float64 { return s.MaxTensile() }

// ByName returns the component extractor for "xx", "yy", "vm" or "mts".
func ByName(name string) (Component, error) {
	switch name {
	case "xx":
		return SigmaXX, nil
	case "yy":
		return SigmaYY, nil
	case "vm":
		return VonMises, nil
	case "mts":
		return MaxTensile, nil
	}
	return nil, fmt.Errorf("metrics: unknown component %q", name)
}

// Stats summarizes the error of a method field against a golden field.
type Stats struct {
	// N is the number of points that passed the threshold.
	N int
	// AvgError is the mean |method − golden| in MPa.
	AvgError float64
	// AvgErrorRate is the mean |method − golden| / |golden| in percent.
	AvgErrorRate float64
	// MaxError is the largest |method − golden| in MPa.
	MaxError float64
}

// Compare computes error statistics between two sampled fields over
// points whose |golden component| exceeds threshold (in MPa). Pass
// threshold 0 to include every point.
func Compare(golden, method []tensor.Stress, comp Component, threshold float64) (Stats, error) {
	if len(golden) != len(method) {
		return Stats{}, fmt.Errorf("metrics: field lengths differ: %d vs %d", len(golden), len(method))
	}
	if !floats.IsFinite(threshold) {
		return Stats{}, fmt.Errorf("metrics: threshold %g is not finite", threshold)
	}
	var st Stats
	var sumErr, sumRate float64
	for i := range golden {
		g := comp(golden[i])
		if math.Abs(g) < threshold {
			continue
		}
		m := comp(method[i])
		e := math.Abs(m - g)
		sumErr += e
		if g != 0 {
			sumRate += e / math.Abs(g)
		}
		if e > st.MaxError {
			st.MaxError = e
		}
		st.N++
	}
	if st.N > 0 {
		st.AvgError = sumErr / float64(st.N)
		st.AvgErrorRate = 100 * sumRate / float64(st.N)
	}
	return st, nil
}

// Row is one method's full set of Table-1-style statistics: the
// monitored region unthresholded, with 10 MPa and 50 MPa thresholds,
// and the critical region with a 50 MPa threshold.
type Row struct {
	Avg          Stats // monitored region, no threshold
	Thresh10     Stats // monitored region, 10 MPa threshold
	Thresh50     Stats // monitored region, 50 MPa threshold
	Critical50   Stats // critical region, 50 MPa threshold
	CriticalAll  Stats // critical region, no threshold (extra diagnostics)
	MonitoredPts int
	CriticalPts  int
}

// TableRow computes a Row given golden/method samples over the
// monitored region and over the critical region.
func TableRow(goldenMon, methodMon, goldenCrit, methodCrit []tensor.Stress, comp Component) (Row, error) {
	var r Row
	var err error
	if r.Avg, err = Compare(goldenMon, methodMon, comp, 0); err != nil {
		return r, err
	}
	if r.Thresh10, err = Compare(goldenMon, methodMon, comp, 10); err != nil {
		return r, err
	}
	if r.Thresh50, err = Compare(goldenMon, methodMon, comp, 50); err != nil {
		return r, err
	}
	if r.Critical50, err = Compare(goldenCrit, methodCrit, comp, 50); err != nil {
		return r, err
	}
	if r.CriticalAll, err = Compare(goldenCrit, methodCrit, comp, 0); err != nil {
		return r, err
	}
	r.MonitoredPts = len(goldenMon)
	r.CriticalPts = len(goldenCrit)
	return r, nil
}
