package metrics

import (
	"testing"
	"tsvstress/internal/floats"

	"tsvstress/internal/tensor"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func TestCompareBasics(t *testing.T) {
	golden := []tensor.Stress{{XX: 100}, {XX: -50}, {XX: 5}}
	method := []tensor.Stress{{XX: 110}, {XX: -45}, {XX: 6}}
	st, err := Compare(golden, method, SigmaXX, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 3 {
		t.Fatalf("N = %d", st.N)
	}
	if !eq(st.AvgError, (10.0+5+1)/3, 1e-12) {
		t.Errorf("AvgError = %v", st.AvgError)
	}
	wantRate := 100 * (10.0/100 + 5.0/50 + 1.0/5) / 3
	if !eq(st.AvgErrorRate, wantRate, 1e-9) {
		t.Errorf("AvgErrorRate = %v, want %v", st.AvgErrorRate, wantRate)
	}
	if st.MaxError != 10 {
		t.Errorf("MaxError = %v", st.MaxError)
	}
}

func TestCompareThreshold(t *testing.T) {
	golden := []tensor.Stress{{XX: 100}, {XX: -50}, {XX: 5}}
	method := []tensor.Stress{{XX: 110}, {XX: -45}, {XX: 50}}
	st, err := Compare(golden, method, SigmaXX, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 2 {
		t.Fatalf("N = %d, want 2 (threshold on |golden|)", st.N)
	}
	if !eq(st.AvgError, 7.5, 1e-12) {
		t.Errorf("AvgError = %v", st.AvgError)
	}
	// Negative golden counts by magnitude.
	st, _ = Compare(golden, method, SigmaXX, 50)
	if st.N != 2 {
		t.Errorf("N = %d, want 2 at 50 MPa threshold", st.N)
	}
}

func TestCompareEmptyAndMismatch(t *testing.T) {
	if _, err := Compare([]tensor.Stress{{}}, nil, SigmaXX, 0); err == nil {
		t.Error("length mismatch should error")
	}
	st, err := Compare(nil, nil, SigmaXX, 0)
	if err != nil || st.N != 0 || st.AvgError != 0 {
		t.Errorf("empty compare = %+v, %v", st, err)
	}
	// All below threshold.
	st, _ = Compare([]tensor.Stress{{XX: 1}}, []tensor.Stress{{XX: 2}}, SigmaXX, 10)
	if st.N != 0 {
		t.Error("all points should be filtered")
	}
}

func TestComponents(t *testing.T) {
	s := tensor.Stress{XX: 3, YY: -4, XY: 1}
	if SigmaXX(s) != 3 || SigmaYY(s) != -4 {
		t.Error("component extractors wrong")
	}
	if VonMises(s) != s.VonMises() || MaxTensile(s) != s.MaxTensile() {
		t.Error("derived extractors wrong")
	}
	for _, name := range []string{"xx", "yy", "vm", "mts"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q) = %v", name, err)
		}
	}
	if _, err := ByName("zz"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestTableRow(t *testing.T) {
	gm := []tensor.Stress{{XX: 100}, {XX: 20}, {XX: 5}}
	mm := []tensor.Stress{{XX: 90}, {XX: 25}, {XX: 5.5}}
	gc := []tensor.Stress{{XX: 120}, {XX: 60}}
	mc := []tensor.Stress{{XX: 100}, {XX: 70}}
	r, err := TableRow(gm, mm, gc, mc, SigmaXX)
	if err != nil {
		t.Fatal(err)
	}
	if r.MonitoredPts != 3 || r.CriticalPts != 2 {
		t.Errorf("point counts %d/%d", r.MonitoredPts, r.CriticalPts)
	}
	if r.Avg.N != 3 || r.Thresh10.N != 2 || r.Thresh50.N != 1 {
		t.Errorf("threshold Ns: %d %d %d", r.Avg.N, r.Thresh10.N, r.Thresh50.N)
	}
	if r.Critical50.N != 2 || !eq(r.Critical50.AvgError, 15, 1e-12) {
		t.Errorf("critical = %+v", r.Critical50)
	}
}
