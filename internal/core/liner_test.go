package core

import (
	"math"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
)

// Section 2.2 of the paper: interactive stress is severe for the
// compliant BCB liner and mild for SiO2, because the liner/substrate
// stiffness mismatch drives the scattering. Verify the *relative*
// correction ordering at the pair midpoint across pitches.
func TestBCBInteractiveStrongerThanSiO2(t *testing.T) {
	for _, d := range []float64{8, 10, 12} {
		rel := func(liner material.Material) float64 {
			an, err := New(material.Baseline(liner), geom.NewPlacement(geom.Pt(-d/2, 0), geom.Pt(d/2, 0)), Options{})
			if err != nil {
				t.Fatal(err)
			}
			mid := geom.Pt(0, 0)
			ls := an.StressLS(mid).XX
			corr := an.Interactive(mid).XX
			return math.Abs(corr / ls)
		}
		bcb, sio2 := rel(material.BCB), rel(material.SiO2)
		if bcb <= sio2 {
			t.Errorf("d=%g: relative correction BCB %.3f ≤ SiO2 %.3f", d, bcb, sio2)
		}
	}
}

// A TSV pair aligned with y instead of x must give the mirrored field —
// the Stage II frame rotation handles arbitrary pair orientations.
func TestPairOrientationEquivalence(t *testing.T) {
	st := material.Baseline(material.BCB)
	horiz, err := New(st, geom.NewPlacement(geom.Pt(-5, 0), geom.Pt(5, 0)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	vert, err := New(st, geom.NewPlacement(geom.Pt(0, -5), geom.Pt(0, 5)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 1}, {X: -3, Y: 4}} {
		h := horiz.StressAt(p)
		// Rotate the configuration by 90°: point (x,y) → (−y,x); the
		// tensor components swap accordingly.
		v := vert.StressAt(geom.Pt(-p.Y, p.X))
		tol := 1e-9 * (1 + math.Abs(h.XX) + math.Abs(h.YY) + math.Abs(h.XY))
		if math.Abs(h.XX-v.YY) > tol || math.Abs(h.YY-v.XX) > tol || math.Abs(h.XY+v.XY) > tol {
			t.Fatalf("rotation equivalence broken at %v: %v vs %v", p, h, v)
		}
	}
}
