package core

// PartitionTiles deterministically splits the tile ids [0, nTiles) into
// shards contiguous ranges of near-equal size (sizes differ by at most
// one; earlier shards get the extra tile). It is the sharding function
// of the cluster tier: because every per-tile evaluation is independent
// and writes disjoint dst slots, any partition of the tiles across any
// number of shards, merged in any completion order, reproduces the
// unsharded map exactly — the property test pins this bit-for-bit.
//
// shards < 1 is treated as 1. When shards > nTiles the trailing shards
// are empty (never nil), so callers can index shard k of a fixed fleet
// without bounds juggling.
func PartitionTiles(nTiles, shards int) [][]int32 {
	if shards < 1 {
		shards = 1
	}
	if nTiles < 0 {
		nTiles = 0
	}
	out := make([][]int32, shards)
	lo := 0
	for s := 0; s < shards; s++ {
		hi := lo + nTiles/shards
		if s < nTiles%shards {
			hi++
		}
		shard := make([]int32, 0, hi-lo)
		for id := lo; id < hi; id++ {
			shard = append(shard, int32(id))
		}
		out[s] = shard
		lo = hi
	}
	return out
}

// Partition splits this tiling's tile ids into shards via
// PartitionTiles.
func (tl *Tiling) Partition(shards int) [][]int32 {
	return PartitionTiles(len(tl.tiles), shards)
}
