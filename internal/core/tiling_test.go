package core

import (
	"context"
	"math"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/tensor"
)

func TestNewTilingRejectsBadInput(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	if _, err := NewTiling(pts, 0); err == nil {
		t.Error("zero cutoff accepted")
	}
	if _, err := NewTiling(pts, math.Inf(1)); err == nil {
		t.Error("infinite cutoff accepted")
	}
	if _, err := NewTiling([]geom.Point{geom.Pt(math.NaN(), 0)}, 25); err == nil {
		t.Error("NaN point accepted")
	}
}

func TestTilingPartition(t *testing.T) {
	pl, err := placegen.Random(60, 1e-2, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	pts := gridPoints(t, pl, 1.0)
	tl, err := NewTiling(pts, 25)
	if err != nil {
		t.Fatal(err)
	}
	if tl.NumPoints() != len(pts) {
		t.Fatalf("NumPoints = %d, want %d", tl.NumPoints(), len(pts))
	}
	// Every point appears in exactly one tile, and every point sits
	// within half-diagonal of its tile center.
	seen := make([]bool, len(pts))
	total := 0
	for id := 0; id < tl.NumTiles(); id++ {
		c := tl.TileCenter(id)
		for _, pi := range tl.TilePoints(id) {
			if seen[pi] {
				t.Fatalf("point %d in two tiles", pi)
			}
			seen[pi] = true
			total++
			if d := pts[pi].Dist(c); d > tl.HalfDiag()*(1+1e-12) {
				t.Fatalf("point %d at %v is %g from tile center %v, half-diag %g", pi, pts[pi], d, c, tl.HalfDiag())
			}
		}
	}
	if total != len(pts) {
		t.Fatalf("tiles cover %d of %d points", total, len(pts))
	}
}

// TestEvalTilesMatchesMapInto pins the partial-recompute primitive:
// evaluating every tile through EvalTiles must reproduce MapInto, and
// evaluating a subset must touch exactly that subset's points.
func TestEvalTilesMatchesMapInto(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(80, 1e-2, 2*st.RPrime+1, 11)
	if err != nil {
		t.Fatal(err)
	}
	an, err := New(st, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := gridPoints(t, pl, 1.5)
	tl, err := NewTiling(pts, 25)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []Mode{ModeLS, ModeFull, ModeInteractive} {
		want := make([]tensor.Stress, len(pts))
		if err := an.MapInto(context.Background(), want, pts, mode); err != nil {
			t.Fatal(err)
		}

		// All tiles → full map.
		all := make([]int32, tl.NumTiles())
		for i := range all {
			all[i] = int32(i)
		}
		got := make([]tensor.Stress, len(pts))
		if err := an.EvalTiles(context.Background(), got, pts, tl, all, mode); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if d := maxAbsDiff(got[i], want[i]); d > 1e-12 {
				t.Fatalf("mode %v: EvalTiles(all)[%d] differs from MapInto by %g", mode, i, d)
			}
		}

		// Subset → only that subset's slots written.
		sentinel := tensor.Stress{XX: math.Inf(1)}
		part := make([]tensor.Stress, len(pts))
		for i := range part {
			part[i] = sentinel
		}
		sub := all[:tl.NumTiles()/3]
		if err := an.EvalTiles(context.Background(), part, pts, tl, sub, mode); err != nil {
			t.Fatal(err)
		}
		inSub := make([]bool, len(pts))
		for _, id := range sub {
			for _, pi := range tl.TilePoints(int(id)) {
				inSub[pi] = true
			}
		}
		for i := range part {
			if inSub[i] {
				if d := maxAbsDiff(part[i], want[i]); d > 1e-12 {
					t.Fatalf("mode %v: subset slot %d differs by %g", mode, i, d)
				}
			} else if part[i] != sentinel {
				t.Fatalf("mode %v: EvalTiles wrote slot %d outside its tiles", mode, i)
			}
		}
	}
}

func TestEvalTilesErrors(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0), geom.Pt(20, 0))
	an, err := New(st, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := gridPoints(t, pl, 2)
	tl, err := NewTiling(pts, 25)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]tensor.Stress, len(pts))
	if err := an.EvalTiles(context.Background(), dst[:1], pts, tl, nil, ModeFull); err == nil {
		t.Error("short dst accepted")
	}
	if err := an.EvalTiles(context.Background(), dst, pts[:len(pts)-1], tl, nil, ModeFull); err == nil {
		t.Error("point/tiling length mismatch accepted")
	}
	if err := an.EvalTiles(context.Background(), dst, pts, tl, []int32{int32(tl.NumTiles())}, ModeFull); err == nil {
		t.Error("out-of-range tile id accepted")
	}
	if err := an.EvalTiles(context.Background(), dst, pts, tl, []int32{-1}, ModeFull); err == nil {
		t.Error("negative tile id accepted")
	}
	if err := an.EvalTiles(context.Background(), dst, pts, tl, nil, ModeFull); err != nil {
		t.Errorf("nil ids (no-op) rejected: %v", err)
	}
}

func gridPoints(t *testing.T, pl *geom.Placement, spacing float64) []geom.Point {
	t.Helper()
	region := pl.Bounds(5)
	nx := int(region.W()/spacing) + 1
	ny := int(region.H()/spacing) + 1
	pts := make([]geom.Point, 0, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			pts = append(pts, geom.Pt(region.Min.X+float64(i)*spacing, region.Min.Y+float64(j)*spacing))
		}
	}
	return pts
}

func maxAbsDiff(a, b tensor.Stress) float64 {
	d := math.Abs(a.XX - b.XX)
	if v := math.Abs(a.YY - b.YY); v > d {
		d = v
	}
	if v := math.Abs(a.XY - b.XY); v > d {
		d = v
	}
	return d
}
