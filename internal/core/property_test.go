package core

import (
	"math"
	"math/rand"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
)

// The analysis must not depend on the order TSVs are listed in.
func TestPermutationInvariance(t *testing.T) {
	st := material.Baseline(material.BCB)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}, {X: 20, Y: 5}}
	a1, err := New(st, geom.NewPlacement(pts...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	perm := []geom.Point{pts[3], pts[1], pts[4], pts[0], pts[2]}
	a2, err := New(st, geom.NewPlacement(perm...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 50; i++ {
		p := geom.Pt(rng.Float64()*30-5, rng.Float64()*20-5)
		s1 := a1.StressAt(p)
		s2 := a2.StressAt(p)
		tol := 1e-9 * (1 + math.Abs(s1.XX) + math.Abs(s1.YY) + math.Abs(s1.XY))
		if math.Abs(s1.XX-s2.XX) > tol || math.Abs(s1.YY-s2.YY) > tol || math.Abs(s1.XY-s2.XY) > tol {
			t.Fatalf("order dependence at %v: %v vs %v", p, s1, s2)
		}
	}
}

// Thermal linearity: halving ΔT must halve every stress (the whole
// pipeline — Lamé constants, look-up table, interactive series — is
// linear in the thermal load).
func TestThermalLinearityEndToEnd(t *testing.T) {
	pl := geom.NewPlacement(geom.Pt(-4, 0), geom.Pt(4, 0))
	full := material.Baseline(material.BCB)
	half := full
	half.DeltaT = full.DeltaT / 2
	aFull, err := New(full, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aHalf, err := New(half, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 3.5, Y: 1}, {X: -8, Y: 2}} {
		sF := aFull.StressAt(p)
		sH := aHalf.StressAt(p)
		tol := 1e-6 * (1 + math.Abs(sF.XX))
		if math.Abs(sF.XX-2*sH.XX) > tol || math.Abs(sF.YY-2*sH.YY) > tol || math.Abs(sF.XY-2*sH.XY) > tol {
			t.Fatalf("not linear in ΔT at %v: %v vs 2×%v", p, sF, sH)
		}
	}
}

// Translating the whole placement translates the field.
func TestTranslationEquivariance(t *testing.T) {
	st := material.Baseline(material.BCB)
	base, err := New(st, geom.NewPlacement(geom.Pt(-5, 0), geom.Pt(5, 0)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	off := geom.Pt(13.7, -4.2)
	moved, err := New(st, geom.NewPlacement(geom.Pt(-5, 0).Add(off), geom.Pt(5, 0).Add(off)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geom.Point{{X: 0, Y: 2}, {X: 4, Y: -1}, {X: -9, Y: 3}} {
		a := base.StressAt(p)
		b := moved.StressAt(p.Add(off))
		tol := 1e-9 * (1 + math.Abs(a.XX) + math.Abs(a.YY))
		if math.Abs(a.XX-b.XX) > tol || math.Abs(a.YY-b.YY) > tol || math.Abs(a.XY-b.XY) > tol {
			t.Fatalf("translation broke the field at %v: %v vs %v", p, a, b)
		}
	}
}

// The LS field is trace-free in the substrate (each isolated TSV's
// substrate field has σrr + σθθ = 0), a structural invariant the
// interactive correction deliberately breaks.
func TestLSTraceFreeInSubstrate(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0), geom.Pt(9, 0), geom.Pt(0, 11))
	an, err := New(st, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		p := geom.Pt(rng.Float64()*30-10, rng.Float64()*30-10)
		if _, d := pl.NearestTSV(p); d < st.RPrime+0.05 {
			continue
		}
		s := an.StressLS(p)
		if math.Abs(s.Trace()) > 1e-2*(1+math.Abs(s.XX)) {
			t.Fatalf("LS trace %v at %v (σ=%v)", s.Trace(), p, s)
		}
	}
}

// Adding a far-away TSV (beyond every cutoff) must not change the local
// analysis.
func TestFarTSVIrrelevant(t *testing.T) {
	st := material.Baseline(material.BCB)
	near, err := New(st, geom.NewPlacement(geom.Pt(-4, 0), geom.Pt(4, 0)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	withFar, err := New(st, geom.NewPlacement(geom.Pt(-4, 0), geom.Pt(4, 0), geom.Pt(200, 200)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Pt(0, 1)
	if near.StressAt(p) != withFar.StressAt(p) {
		t.Error("far TSV changed the local field")
	}
}
