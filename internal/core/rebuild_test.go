package core

import (
	"context"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/tensor"
)

// TestRebuildReusesCoefficientCache pins the edit-aware constructor
// contract: rebuilding an analyzer after an edit must reuse the
// pitch-keyed interact coefficient cache (and the solved models)
// instead of recomputing transfer functions.
func TestRebuildReusesCoefficientCache(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := placegen.Array(8, 8, 10) // regular array: few distinct pitches
	an, err := New(st, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries0, hits0 := an.Model.CoeffCacheStats()
	if entries0 == 0 {
		t.Fatal("array placement produced no cached pitches")
	}

	// Move the corner TSV outward by one pitch: every new pair distance
	// is still a lattice distance already in the cache, so the rebuild
	// must add no cache entries and satisfy every round from the cache.
	edited := pl.Clone()
	if err := (geom.Edit{Op: geom.EditMove, Index: 0, TSV: geom.TSV{Center: pl.TSVs[0].Center.Add(geom.Pt(-10, 0))}}).Apply(edited, 2*st.RPrime); err != nil {
		t.Fatal(err)
	}
	nb, err := an.Rebuild(edited, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Model != an.Model || nb.LS != an.LS {
		t.Fatal("Rebuild did not share the solved models")
	}
	entries1, hits1 := nb.Model.CoeffCacheStats()
	if entries1 != entries0 {
		t.Errorf("lattice move added cache entries: %d → %d", entries0, entries1)
	}
	if hits1 <= hits0 {
		t.Errorf("rebuild did not hit the coefficient cache (hits %d → %d)", hits0, hits1)
	}

	// The rebuilt analyzer must agree with a from-scratch one.
	scratch, err := New(st, edited, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := gridPoints(t, edited, 3)
	got := make([]tensor.Stress, len(pts))
	want := make([]tensor.Stress, len(pts))
	if err := nb.MapInto(context.Background(), got, pts, ModeFull); err != nil {
		t.Fatal(err)
	}
	if err := scratch.MapInto(context.Background(), want, pts, ModeFull); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if d := maxAbsDiff(got[i], want[i]); d > 1e-9 {
			t.Fatalf("rebuilt analyzer differs from scratch at %v by %g MPa", pts[i], d)
		}
	}
}

// TestRebuildSharesUnchangedRounds verifies the prev mapping: victims
// far from the edit share their packed rounds by pointer.
func TestRebuildSharesUnchangedRounds(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := placegen.Array(10, 10, 10)
	an, err := New(st, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Move TSV 0 (a corner); victims beyond PairPitchCutoff of both its
	// old and new position keep their round sets.
	oldC := pl.TSVs[0].Center
	newC := oldC.Add(geom.Pt(-15, -15))
	edited := pl.Clone()
	if err := (geom.Edit{Op: geom.EditMove, Index: 0, TSV: geom.TSV{Center: newC}}).Apply(edited, 2*st.RPrime); err != nil {
		t.Fatal(err)
	}
	cut := an.Options().PairPitchCutoff
	prev := func(j int) int {
		if j == 0 {
			return -1
		}
		c := edited.TSVs[j].Center
		if c.Dist(oldC) <= cut || c.Dist(newC) <= cut {
			return -1
		}
		return j
	}
	nb, err := an.Rebuild(edited, prev)
	if err != nil {
		t.Fatal(err)
	}
	shared, rebuilt := 0, 0
	for j := range nb.victimRounds {
		if prev(j) >= 0 {
			if nb.victimRounds[j] != an.victimRounds[j] {
				t.Fatalf("victim %d eligible for reuse but rounds were rebuilt", j)
			}
			shared++
		} else {
			rebuilt++
		}
	}
	if shared == 0 || rebuilt == 0 {
		t.Fatalf("degenerate reuse split: %d shared, %d rebuilt", shared, rebuilt)
	}

	// Parity against a from-scratch analyzer.
	scratch, err := New(st, edited, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := gridPoints(t, edited, 3)
	got := make([]tensor.Stress, len(pts))
	want := make([]tensor.Stress, len(pts))
	if err := nb.MapInto(context.Background(), got, pts, ModeFull); err != nil {
		t.Fatal(err)
	}
	if err := scratch.MapInto(context.Background(), want, pts, ModeFull); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if d := maxAbsDiff(got[i], want[i]); d > 1e-9 {
			t.Fatalf("round-sharing rebuild differs from scratch at %v by %g MPa", pts[i], d)
		}
	}
}

func TestRebuildValidates(t *testing.T) {
	st := material.Baseline(material.BCB)
	an, err := New(st, geom.NewPlacement(geom.Pt(0, 0), geom.Pt(20, 0)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping TSVs must be rejected exactly as New rejects them.
	bad := geom.NewPlacement(geom.Pt(0, 0), geom.Pt(1, 0))
	if _, err := an.Rebuild(bad, nil); err == nil {
		t.Error("Rebuild accepted an overlapping placement")
	}
}
