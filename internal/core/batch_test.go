package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/tensor"
)

// parityTol is the allowed disagreement between the tile-batched and
// pointwise paths. The engines perform the same arithmetic up to
// summation order and the Atan2-free rotation, so agreement is far
// tighter than this in practice.
const parityTol = 1e-9

func randomAnalyzer(t testing.TB, n int, density float64, seed int64, opt Options) *Analyzer {
	t.Helper()
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(n, density, 2*st.RPrime+1, seed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(st, pl, opt)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// randomPoints draws points over the placement bounds, including
// points inside TSV footprints so the interior fallback path runs.
func randomPoints(a *Analyzer, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	b := a.Placement.Bounds(5)
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		pts = append(pts, geom.Pt(b.Min.X+rng.Float64()*b.W(), b.Min.Y+rng.Float64()*b.H()))
	}
	// Stress the edge cases: points exactly at TSV centers and near
	// footprint boundaries.
	for i := 0; i < 4 && i < a.Placement.Len(); i++ {
		c := a.Placement.TSVs[i].Center
		pts = append(pts, c, geom.Pt(c.X+a.Struct.RPrime*0.99, c.Y), geom.Pt(c.X, c.Y+a.Struct.RPrime*1.01))
	}
	return pts
}

func pointwiseRef(a *Analyzer, pts []geom.Point, mode Mode) []tensor.Stress {
	out := make([]tensor.Stress, len(pts))
	for i, p := range pts {
		switch mode {
		case ModeLS:
			out[i] = a.StressLS(p)
		case ModeInteractive:
			out[i] = a.Interactive(p)
		default:
			out[i] = a.StressAt(p)
		}
	}
	return out
}

func maxDiff(a, b []tensor.Stress) float64 {
	var m float64
	for i := range a {
		for _, d := range []float64{a[i].XX - b[i].XX, a[i].YY - b[i].YY, a[i].XY - b[i].XY} {
			m = math.Max(m, math.Abs(d))
		}
	}
	return m
}

// TestMapBatchedParity pins the tile-batched Map/MapInto against the
// pointwise StressAt/StressLS/Interactive evaluators on seeded random
// placements, for every mode, within 1e-9 MPa.
func TestMapBatchedParity(t *testing.T) {
	cases := []struct {
		n       int
		density float64
		seed    int64
	}{
		{30, 1e-2, 1},
		{60, 0.5e-2, 2},
		{100, 1e-2, 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("n%d_seed%d", tc.n, tc.seed), func(t *testing.T) {
			// Workers > 1 forces the shared-queue parallel path even on
			// single-core machines.
			a := randomAnalyzer(t, tc.n, tc.density, tc.seed, Options{Workers: 4})
			pts := randomPoints(a, 700, tc.seed+100)
			for _, mode := range []Mode{ModeLS, ModeFull, ModeInteractive} {
				want := pointwiseRef(a, pts, mode)
				got := a.Map(pts, mode)
				if d := maxDiff(got, want); d > parityTol {
					t.Errorf("mode %v: Map vs pointwise max diff %.3g MPa", mode, d)
				}
				into := make([]tensor.Stress, len(pts))
				if err := a.MapInto(context.Background(), into, pts, mode); err != nil {
					t.Fatal(err)
				}
				if d := maxDiff(into, want); d > parityTol {
					t.Errorf("mode %v: MapInto vs pointwise max diff %.3g MPa", mode, d)
				}
			}
		})
	}
}

// TestMapBatchedParityGrid covers a regular array placement (the case
// the pitch-keyed coefficient cache collapses) with grid-like points.
func TestMapBatchedParityGrid(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := placegen.Array(6, 5, 10)
	a, err := New(st, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var pts []geom.Point
	b := pl.Bounds(10)
	for y := b.Min.Y; y <= b.Max.Y; y += 1.7 {
		for x := b.Min.X; x <= b.Max.X; x += 1.7 {
			pts = append(pts, geom.Pt(x, y))
		}
	}
	for _, mode := range []Mode{ModeLS, ModeFull, ModeInteractive} {
		want := pointwiseRef(a, pts, mode)
		got := a.Map(pts, mode)
		if d := maxDiff(got, want); d > parityTol {
			t.Errorf("mode %v: max diff %.3g MPa", mode, d)
		}
	}
}

// TestArrayCoeffCacheCollapse checks the headline cache property: on a
// regular TSV array the thousands of pair rounds share a handful of
// distinct pitches, so core.New solves only a few coefficient pairs.
func TestArrayCoeffCacheCollapse(t *testing.T) {
	st := material.Baseline(material.BCB)
	a, err := New(st, placegen.Array(10, 10, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries, hits := a.Model.CoeffCacheStats()
	if a.NumPairRounds() < 500 {
		t.Fatalf("array produced only %d rounds", a.NumPairRounds())
	}
	// Distinct pitches within the 25 µm cutoff on a 10 µm grid:
	// 10, 10√2, 20, 10√5, 20√2 — allow slack but demand collapse.
	if entries > 10 {
		t.Errorf("cache has %d entries for %d rounds; want a handful", entries, a.NumPairRounds())
	}
	if entries+hits != a.NumPairRounds() {
		t.Errorf("entries %d + hits %d != rounds %d", entries, hits, a.NumPairRounds())
	}
}

// TestMapBatchedSingleWorker exercises the sequential tile path.
func TestMapBatchedSingleWorker(t *testing.T) {
	a := randomAnalyzer(t, 40, 1e-2, 7, Options{Workers: 1})
	pts := randomPoints(a, 300, 8)
	want := pointwiseRef(a, pts, ModeFull)
	if d := maxDiff(a.Map(pts, ModeFull), want); d > parityTol {
		t.Errorf("single-worker max diff %.3g MPa", d)
	}
}

// TestMapReuseAcrossCalls checks that pooled scratch state does not
// leak between calls of different modes and point sets.
func TestMapReuseAcrossCalls(t *testing.T) {
	a := randomAnalyzer(t, 50, 1e-2, 11, Options{Workers: 3})
	ptsA := randomPoints(a, 400, 12)
	ptsB := randomPoints(a, 150, 13)
	for i := 0; i < 3; i++ {
		for _, mode := range []Mode{ModeFull, ModeLS, ModeInteractive} {
			for _, pts := range [][]geom.Point{ptsA, ptsB} {
				want := pointwiseRef(a, pts, mode)
				if d := maxDiff(a.Map(pts, mode), want); d > parityTol {
					t.Fatalf("iter %d mode %v: max diff %.3g MPa", i, mode, d)
				}
			}
		}
	}
}

func TestMapIntoLengthMismatch(t *testing.T) {
	a := pairAnalyzer(t, 10)
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	if err := a.MapInto(context.Background(), make([]tensor.Stress, 1), pts, ModeFull); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := a.MapInto(context.Background(), nil, nil, ModeFull); err != nil {
		t.Fatalf("empty MapInto: %v", err)
	}
}

// TestMapEmptyAndTiny covers the pointwise fallback and empty input.
func TestMapEmptyAndTiny(t *testing.T) {
	a := pairAnalyzer(t, 10)
	if out := a.Map(nil, ModeFull); len(out) != 0 {
		t.Fatalf("empty Map returned %d values", len(out))
	}
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(-8, 3)}
	want := pointwiseRef(a, pts, ModeFull)
	if d := maxDiff(a.Map(pts, ModeFull), want); d > parityTol {
		t.Errorf("tiny Map max diff %.3g MPa", d)
	}
}
