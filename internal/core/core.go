// Package core implements the paper's primary contribution: the
// two-stage semi-analytical full-chip TSV-induced stress modeling
// framework (Algorithm 1).
//
// Stage I performs linear superposition of single-TSV contributions of
// TSVs within a cutoff distance of each simulation point (table
// look-up). Stage II adds the interactive-stress contribution of every
// nearby TSV pair: for a simulation point, a pair participates in one
// aggressor→victim round when the pair pitch is within PairPitchCutoff
// and the victim lies within PairDistCutoff of the point; both
// orderings of a pair are separate rounds, exactly as in Section 4 of
// the paper. Both stages are O(n) in the number of simulation points.
package core

//tsvlint:apiboundary

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"tsvstress/internal/geom"
	"tsvstress/internal/interact"
	"tsvstress/internal/material"
	"tsvstress/internal/spatial"
	"tsvstress/internal/superpose"
	"tsvstress/internal/tensor"
)

// Options configures the analyzer. Zero values select the paper's
// defaults.
type Options struct {
	// LSCutoff is the Stage I nearby-TSV distance in µm (default 25).
	LSCutoff float64
	// PairPitchCutoff is the maximum pair pitch considered in Stage II
	// (default 25 µm).
	PairPitchCutoff float64
	// PairDistCutoff is the maximum victim-to-point distance considered
	// in Stage II (default 25 µm).
	PairDistCutoff float64
	// MMax is the interactive-series truncation (default 10).
	MMax int
	// ExactLS disables the Stage I look-up table (ablation).
	ExactLS bool
	// ScalarKernel forces the pre-SoA scalar tile kernel. It is the
	// parity oracle for the SoA lane kernels (see batch.go) and a few
	// times slower; production leaves it false. ExactLS implies the
	// scalar Stage I path regardless (there is no table to inline).
	ScalarKernel bool
	// Workers bounds the parallelism of Map calls (default NumCPU).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.LSCutoff <= 0 {
		o.LSCutoff = superpose.DefaultCutoff
	}
	if o.PairPitchCutoff <= 0 {
		o.PairPitchCutoff = 25
	}
	if o.PairDistCutoff <= 0 {
		o.PairDistCutoff = 25
	}
	if o.MMax <= 0 {
		o.MMax = interact.DefaultMMax
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// Resolved returns the options with every zero field replaced by its
// default — the exact configuration New would run under. A cluster
// coordinator ships resolved options so every worker solves the same
// models regardless of its own defaults; Workers stays as given (0 lets
// each process size its own parallelism without affecting values).
func (o Options) Resolved() Options {
	w := o.Workers
	o = o.withDefaults()
	o.Workers = w
	return o
}

// GatherCutoff returns the per-tile gather radius (µm) MapInto would
// partition with for the given mode: the largest cutoff among the
// stages the mode evaluates. It is the cutoff a remote evaluator must
// build its Tiling with to reproduce MapInto's partition.
func (o Options) GatherCutoff(mode Mode) float64 {
	o = o.withDefaults()
	cutoff := 0.0
	if mode == ModeLS || mode == ModeFull {
		cutoff = o.LSCutoff
	}
	if (mode == ModeFull || mode == ModeInteractive) && o.PairDistCutoff > cutoff {
		cutoff = o.PairDistCutoff
	}
	return cutoff
}

// Analyzer is the full-chip stress analyzer for one placement. It is
// immutable after New and safe for concurrent use.
type Analyzer struct {
	Struct    material.Structure
	Placement *geom.Placement
	LS        *superpose.LS
	Model     *interact.Model
	opt       Options

	idx *spatial.Index
	// pairEvals[j] holds one evaluator per aggressor→victim round with
	// victim j (aggressors within PairPitchCutoff of TSV j).
	pairEvals [][]interact.PairEval
	// victimRounds[j] is the structure-of-arrays packing of pairEvals[j]
	// used by the tile-batched engine (nil when TSV j has no rounds).
	victimRounds []*interact.VictimRounds
	numPairs     int

	// Stage I radial table lanes for the fused SoA kernel (nil in
	// ExactLS mode, which stays on the scalar path); see batch.go.
	lsRR, lsTT []float64
	lsInvStep  float64

	// Scratch pools for the batched engine (see batch.go).
	mapPool  sync.Pool
	tilePool sync.Pool
}

// initLSLanes captures the LS radial table for the fused tile kernel.
func (a *Analyzer) initLSLanes() {
	if rr, tt, step, ok := a.LS.Table(); ok {
		a.lsRR, a.lsTT, a.lsInvStep = rr, tt, 1/step
	}
}

// New builds the analyzer: it solves the single-TSV model, solves the
// per-harmonic interactive systems, precomputes the Stage I look-up
// table, the spatial index and the per-victim pair evaluators.
func New(st material.Structure, pl *geom.Placement, opt Options) (*Analyzer, error) {
	opt = opt.withDefaults()
	if err := pl.Validate(2 * st.RPrime); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ls, err := superpose.New(st, superpose.Options{Cutoff: opt.LSCutoff, Exact: opt.ExactLS})
	if err != nil {
		return nil, err
	}
	model, err := interact.New(st, opt.MMax)
	if err != nil {
		return nil, err
	}
	a := &Analyzer{
		Struct:    st,
		Placement: pl,
		LS:        ls,
		Model:     model,
		opt:       opt,
		idx:       spatial.NewIndex(pl.Centers(), maxF(opt.LSCutoff, opt.PairDistCutoff)),
	}
	a.initLSLanes()
	// Build per-victim pair rounds; rounds at equal pitch share one
	// coefficient pair via the model's pitch-keyed cache.
	a.pairEvals = make([][]interact.PairEval, pl.Len())
	a.victimRounds = make([]*interact.VictimRounds, pl.Len())
	for j, vic := range pl.TSVs {
		a.idx.Near(vic.Center, opt.PairPitchCutoff, func(i int, d float64) {
			if i == j || d <= 0 {
				return
			}
			a.pairEvals[j] = append(a.pairEvals[j], model.NewPairEval(vic.Center, pl.TSVs[i].Center))
			a.numPairs++
		})
		a.victimRounds[j] = interact.PackRounds(a.pairEvals[j])
	}
	return a, nil
}

// NumPairRounds returns the total number of aggressor→victim rounds.
func (a *Analyzer) NumPairRounds() int { return a.numPairs }

// Options returns the effective options (after defaulting).
func (a *Analyzer) Options() Options { return a.opt }

// StressLS returns the Stage I (linear superposition) stress at p in
// MPa — the baseline method of [9].
func (a *Analyzer) StressLS(p geom.Point) tensor.Stress {
	return a.LS.StressAt(p, a.idx)
}

// Interactive returns the Stage II correction at p in MPa: the
// superposed interactive-stress contributions of all nearby pair
// rounds.
func (a *Analyzer) Interactive(p geom.Point) tensor.Stress {
	var s tensor.Stress
	a.idx.Near(p, a.opt.PairDistCutoff, func(j int, _ float64) {
		evs := a.pairEvals[j]
		for k := range evs {
			s = s.Add(evs[k].StressAt(p))
		}
	})
	return s
}

// StressAt returns the proposed-framework stress at p in MPa: Stage I
// plus Stage II.
func (a *Analyzer) StressAt(p geom.Point) tensor.Stress {
	return a.StressLS(p).Add(a.Interactive(p))
}

// Mode selects which field a Map call evaluates.
type Mode int

const (
	// ModeLS evaluates Stage I only (the baseline).
	ModeLS Mode = iota
	// ModeFull evaluates Stage I + Stage II (the proposed framework).
	ModeFull
	// ModeInteractive evaluates Stage II only (diagnostics/ablation).
	ModeInteractive
)

// Map evaluates the selected field at every point in parallel through
// the tile-batched engine (see batch.go); use MapInto to stream into a
// reusable destination buffer (and to pass a cancellation context)
// instead.
func (a *Analyzer) Map(pts []geom.Point, mode Mode) []tensor.Stress {
	out := make([]tensor.Stress, len(pts))
	_ = a.MapInto(context.Background(), out, pts, mode) // length matches by construction
	return out
}

// mapPointwise is the reference evaluation path: per-point hash queries
// with static chunking across workers. It backs tiny Map calls, the
// parity tests and the before/after benchmarks. A batch this small is
// one unit of cancellation (the tile analogue), checked on entry only;
// kernel panics are contained like the batched path's.
func (a *Analyzer) mapPointwise(ctx context.Context, dst []tensor.Stress, pts []geom.Point, mode Mode) error {
	if ctx != nil && ctx.Err() != nil {
		return &CancelError{TilesDone: 0, TilesTotal: 1, Cause: ctx.Err()}
	}
	var eval func(geom.Point) tensor.Stress
	switch mode {
	case ModeLS:
		eval = a.StressLS
	case ModeInteractive:
		eval = a.Interactive
	default:
		eval = a.StressAt
	}
	workers := a.opt.Workers
	if workers > len(pts) {
		workers = len(pts)
	}
	if workers <= 1 {
		return evalRange(eval, dst, pts, 0, len(pts))
	}
	var wg sync.WaitGroup
	chunk := (len(pts) + workers - 1) / workers
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pts) {
			hi = len(pts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = evalRange(eval, dst, pts, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// evalRange evaluates dst[lo:hi] pointwise, recovering a kernel panic
// into a *PanicError on the calling goroutine.
func evalRange(eval func(geom.Point) tensor.Stress, dst []tensor.Stress, pts []geom.Point, lo, hi int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	for i := lo; i < hi; i++ {
		dst[i] = eval(pts[i])
	}
	return nil
}

func errDstLen(dst, pts int) error {
	return fmt.Errorf("core: MapInto dst has %d slots for %d points", dst, pts)
}

func errNonFinitePoint(i int, p geom.Point) error {
	return fmt.Errorf("core: point %d (%g, %g) is not finite", i, p.X, p.Y)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
