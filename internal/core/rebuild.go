package core

//tsvlint:apiboundary

import (
	"fmt"

	"tsvstress/internal/geom"
	"tsvstress/internal/interact"
	"tsvstress/internal/spatial"
)

// Rebuild returns a new Analyzer over pl that shares this analyzer's
// solved models: the Stage I look-up table (superpose.LS) and the
// interactive model (interact.Model) with its per-harmonic transfer
// functions and pitch-keyed coefficient cache. Only the spatial index
// and the per-victim pair rounds are rebuilt, so an analyzer refresh
// after a placement edit costs O(n·k) cache look-ups instead of the
// boundary-system and radial-table solves New performs — the edit-aware
// constructor path the incremental engine flushes through.
//
// prev optionally maps a new TSV index j to the index this analyzer
// held the same TSV at, provided the TSV's center AND every aggressor
// within PairPitchCutoff of it are unchanged by the edits between the
// two placements; return -1 when that does not hold (moved, added, or
// any neighbor changed). Eligible victims share the previous packed
// rounds by pointer and skip re-aggregation entirely. Pass nil to
// rebuild every victim's rounds (still through the shared coefficient
// cache).
//
// The returned analyzer is independent of the receiver except for the
// shared immutable models and any shared round packs; both analyzers
// remain safe for concurrent use.
func (a *Analyzer) Rebuild(pl *geom.Placement, prev func(j int) int) (*Analyzer, error) {
	if err := pl.Validate(2 * a.Struct.RPrime); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	nb := &Analyzer{
		Struct:    a.Struct,
		Placement: pl,
		LS:        a.LS,
		Model:     a.Model,
		opt:       a.opt,
		idx:       spatial.NewIndex(pl.Centers(), maxF(a.opt.LSCutoff, a.opt.PairDistCutoff)),
	}
	nb.initLSLanes()
	nb.pairEvals = make([][]interact.PairEval, pl.Len())
	nb.victimRounds = make([]*interact.VictimRounds, pl.Len())
	for j, vic := range pl.TSVs {
		if prev != nil {
			if pj := prev(j); pj >= 0 && pj < len(a.pairEvals) {
				nb.pairEvals[j] = a.pairEvals[pj]
				nb.victimRounds[j] = a.victimRounds[pj]
				nb.numPairs += len(nb.pairEvals[j])
				continue
			}
		}
		nb.idx.Near(vic.Center, a.opt.PairPitchCutoff, func(i int, d float64) {
			if i == j || d <= 0 {
				return
			}
			nb.pairEvals[j] = append(nb.pairEvals[j], a.Model.NewPairEval(vic.Center, pl.TSVs[i].Center))
			nb.numPairs++
		})
		nb.victimRounds[j] = interact.PackRounds(nb.pairEvals[j])
	}
	return nb, nil
}
