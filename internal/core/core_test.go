package core

import (
	"math"
	"testing"
	"tsvstress/internal/floats"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func pairAnalyzer(t *testing.T, d float64) *Analyzer {
	t.Helper()
	pl := geom.NewPlacement(geom.Pt(-d/2, 0), geom.Pt(d/2, 0))
	a, err := New(material.Baseline(material.BCB), pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRejectsOverlappingTSVs(t *testing.T) {
	pl := geom.NewPlacement(geom.Pt(0, 0), geom.Pt(4, 0)) // pitch < 2R' = 6
	if _, err := New(material.Baseline(material.BCB), pl, Options{}); err == nil {
		t.Fatal("overlapping TSVs should be rejected")
	}
}

func TestDefaults(t *testing.T) {
	a := pairAnalyzer(t, 10)
	opt := a.Options()
	if opt.LSCutoff != 25 || opt.PairPitchCutoff != 25 || opt.PairDistCutoff != 25 || opt.MMax != 10 {
		t.Errorf("defaults = %+v", opt)
	}
	if opt.Workers < 1 {
		t.Error("workers must be >= 1")
	}
}

func TestPairRoundCount(t *testing.T) {
	// Two TSVs within pitch cutoff: 2 rounds (each is victim once).
	a := pairAnalyzer(t, 10)
	if a.NumPairRounds() != 2 {
		t.Errorf("rounds = %d, want 2", a.NumPairRounds())
	}
	// Beyond the pitch cutoff: no rounds.
	pl := geom.NewPlacement(geom.Pt(0, 0), geom.Pt(30, 0))
	far, err := New(material.Baseline(material.BCB), pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if far.NumPairRounds() != 0 {
		t.Errorf("far rounds = %d, want 0", far.NumPairRounds())
	}
	// Three TSVs in a tight row: pairs (0,1),(1,2),(0,2) → 6 rounds.
	pl3 := geom.NewPlacement(geom.Pt(0, 0), geom.Pt(8, 0), geom.Pt(16, 0))
	a3, err := New(material.Baseline(material.BCB), pl3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a3.NumPairRounds() != 6 {
		t.Errorf("rounds = %d, want 6", a3.NumPairRounds())
	}
}

func TestStressDecomposition(t *testing.T) {
	a := pairAnalyzer(t, 9)
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 2}, {X: -7, Y: 1}} {
		full := a.StressAt(p)
		sum := a.StressLS(p).Add(a.Interactive(p))
		if !eq(full.XX, sum.XX, 1e-12) || !eq(full.YY, sum.YY, 1e-12) || !eq(full.XY, sum.XY, 1e-12) {
			t.Errorf("decomposition broken at %v", p)
		}
	}
}

func TestInteractiveReducesMidpointSigmaXX(t *testing.T) {
	// The BCB pair: LS overestimates σxx between TSVs (Fig. 3); the
	// Stage II correction must be negative there and grow as the pitch
	// shrinks.
	corr8 := pairAnalyzer(t, 8).Interactive(geom.Pt(0, 0)).XX
	corr12 := pairAnalyzer(t, 12).Interactive(geom.Pt(0, 0)).XX
	if corr8 >= 0 || corr12 >= 0 {
		t.Fatalf("corrections should be negative: d=8 → %g, d=12 → %g", corr8, corr12)
	}
	if math.Abs(corr8) <= math.Abs(corr12) {
		t.Errorf("correction should grow as pitch shrinks: |%g| vs |%g|", corr8, corr12)
	}
}

func TestMapModesMatchPointwise(t *testing.T) {
	a := pairAnalyzer(t, 10)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 1}, {X: -8, Y: -2}, {X: 5, Y: 5}, {X: 20, Y: 0}}
	ls := a.Map(pts, ModeLS)
	full := a.Map(pts, ModeFull)
	inter := a.Map(pts, ModeInteractive)
	for i, p := range pts {
		if ls[i] != a.StressLS(p) {
			t.Errorf("ModeLS mismatch at %v", p)
		}
		if full[i] != a.StressAt(p) {
			t.Errorf("ModeFull mismatch at %v", p)
		}
		if inter[i] != a.Interactive(p) {
			t.Errorf("ModeInteractive mismatch at %v", p)
		}
	}
}

func TestMapSerialEqualsParallel(t *testing.T) {
	d := 10.0
	pl := geom.NewPlacement(geom.Pt(-d/2, 0), geom.Pt(d/2, 0), geom.Pt(0, d))
	serial, err := New(material.Baseline(material.BCB), pl, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(material.Baseline(material.BCB), pl, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var pts []geom.Point
	for i := 0; i < 200; i++ {
		pts = append(pts, geom.Pt(float64(i%20)-10, float64(i/20)-5))
	}
	s := serial.Map(pts, ModeFull)
	p := parallel.Map(pts, ModeFull)
	for i := range pts {
		if s[i] != p[i] {
			t.Fatalf("parallel mismatch at %d", i)
		}
	}
}

func TestFarFieldInteractiveVanishes(t *testing.T) {
	a := pairAnalyzer(t, 8)
	// Beyond PairDistCutoff of both TSVs, Stage II contributes nothing.
	if got := a.Interactive(geom.Pt(100, 0)); got != (tensor.Stress{}) {
		t.Errorf("far-field interactive = %v", got)
	}
}

func TestCutoffOptionsHonored(t *testing.T) {
	d := 10.0
	pl := geom.NewPlacement(geom.Pt(-d/2, 0), geom.Pt(d/2, 0))
	tight, err := New(material.Baseline(material.BCB), pl, Options{PairPitchCutoff: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tight.NumPairRounds() != 0 {
		t.Errorf("pitch cutoff 8 on d=10 pair should give 0 rounds, got %d", tight.NumPairRounds())
	}
	shortRange, err := New(material.Baseline(material.BCB), pl, Options{PairDistCutoff: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Point 7 µm from both victims: no interactive contribution.
	if got := shortRange.Interactive(geom.Pt(0, 7.5)); got != (tensor.Stress{}) {
		t.Errorf("dist cutoff not honored: %v", got)
	}
}

func TestExactLSMatchesTableLS(t *testing.T) {
	d := 9.0
	pl := geom.NewPlacement(geom.Pt(-d/2, 0), geom.Pt(d/2, 0))
	tab, err := New(material.Baseline(material.BCB), pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := New(material.Baseline(material.BCB), pl, Options{ExactLS: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 3}, {X: -6, Y: 1}} {
		a := tab.StressLS(p)
		b := ex.StressLS(p)
		scale := math.Max(1, math.Abs(b.XX)+math.Abs(b.YY))
		if !eq(a.XX, b.XX, 2e-3*scale) || !eq(a.YY, b.YY, 2e-3*scale) {
			t.Errorf("table vs exact LS at %v: %v vs %v", p, a, b)
		}
	}
}

func TestEmptyPlacement(t *testing.T) {
	a, err := New(material.Baseline(material.BCB), geom.NewPlacement(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.StressAt(geom.Pt(0, 0)); got != (tensor.Stress{}) {
		t.Errorf("empty placement stress = %v", got)
	}
	if out := a.Map(nil, ModeFull); len(out) != 0 {
		t.Error("empty Map should be empty")
	}
}
