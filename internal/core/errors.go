package core

import (
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel a canceled evaluation wraps: MapInto,
// EvalTiles and the incremental engine's Flush return an error matching
// errors.Is(err, ErrCanceled) when their context is canceled or its
// deadline expires mid-map. The concrete error is a *CancelError
// carrying partial-progress accounting.
var ErrCanceled = errors.New("core: evaluation canceled")

// CancelError reports a cooperatively canceled evaluation. Cancellation
// is checked per tile — never per point — so at most one tile's work
// runs after the context fires. The destination slice holds valid
// values for every completed tile and stale/zero values elsewhere;
// callers that need a consistent map must re-evaluate (the incremental
// engine keeps its dirty flags set so the next Flush does exactly
// that).
type CancelError struct {
	// TilesDone is the number of tiles fully evaluated before the
	// cancellation was observed.
	TilesDone int
	// TilesTotal is the number of tiles the call was asked to evaluate.
	TilesTotal int
	// Cause is the context error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

// Error implements error.
func (e *CancelError) Error() string {
	return fmt.Sprintf("core: evaluation canceled after %d of %d tiles: %v",
		e.TilesDone, e.TilesTotal, e.Cause)
}

// Unwrap exposes both the ErrCanceled sentinel and the context cause,
// so errors.Is works against either.
func (e *CancelError) Unwrap() []error { return []error{ErrCanceled, e.Cause} }

// PanicError is a kernel panic contained by the evaluation engine: a
// panic raised while evaluating a tile (or a pointwise chunk) is
// recovered on its worker goroutine and surfaced as an error instead of
// killing the process. The destination slice is left partially written;
// treat the evaluation as failed.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery point.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: evaluation panicked: %v", e.Value)
}
