//tsvlint:hotpath

package core

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"tsvstress/internal/faultinject"
	"tsvstress/internal/floats"
	"tsvstress/internal/geom"
	"tsvstress/internal/tensor"
)

// Tiling is the square spatial partition of a fixed point set used by
// the tile-batched engine. MapInto builds one transiently per call; the
// incremental engine (internal/incr) builds one once per session and
// keeps it for the lifetime of the point set, re-evaluating only the
// tiles an edit dirtied through EvalTiles.
//
// A Tiling is immutable after NewTiling and safe for concurrent use;
// the zero value is reusable scratch for the pooled MapInto path.
type Tiling struct {
	tileOf []int32 // build scratch: point → tile id
	counts []int32 // build scratch: counting sort
	order  []int32 // point indices sorted by tile
	tiles  []tile
	half   float64 // tile half-diagonal
	cutoff float64 // the gather-radius argument build was called with
	n      int     // number of partitioned points
}

// NewTiling partitions pts into square tiles sized for gather radius
// cutoff (tile side ~cutoff/2, capped so pathological extents grow the
// tile instead of the grid — identical to the partition MapInto
// performs internally). cutoff must be positive and finite; every point
// must be finite, the same rejection MapInto applies, because a NaN
// coordinate poisons the tile binning.
func NewTiling(pts []geom.Point, cutoff float64) (*Tiling, error) {
	if !floats.IsFinite(cutoff) || cutoff <= 0 {
		return nil, fmt.Errorf("core: tiling cutoff %g must be positive and finite", cutoff)
	}
	for i := range pts {
		if !floats.IsFinite(pts[i].X) || !floats.IsFinite(pts[i].Y) {
			return nil, errNonFinitePoint(i, pts[i])
		}
	}
	tl := &Tiling{}
	tl.build(pts, cutoff)
	return tl, nil
}

// NumPoints returns the number of points the tiling partitions.
func (tl *Tiling) NumPoints() int { return tl.n }

// NumTiles returns the number of non-empty tiles.
func (tl *Tiling) NumTiles() int { return len(tl.tiles) }

// HalfDiag returns the tile half-diagonal in µm — the slack a caller
// must add to a point-level radius to turn it into a tile-center
// radius.
func (tl *Tiling) HalfDiag() float64 { return tl.half }

// Cutoff returns the gather-radius cutoff (µm) the tiling was built
// for. Two
// tilings built over the same point slice with the same cutoff are
// identical (the partition is deterministic), which is what lets a
// cluster worker rebuild the coordinator's tiling from (points, cutoff)
// alone and exchange bare tile ids over the wire.
func (tl *Tiling) Cutoff() float64 { return tl.cutoff }

// TileCenter returns the center of tile id.
func (tl *Tiling) TileCenter(id int) geom.Point {
	t := tl.tiles[id]
	return geom.Pt(t.cx, t.cy)
}

// TilePoints returns the indices (into the partitioned point slice) of
// the points in tile id. The slice aliases the tiling's internal order
// buffer; callers must not mutate it.
func (tl *Tiling) TilePoints(id int) []int32 {
	t := tl.tiles[id]
	return tl.order[t.lo:t.hi]
}

// build bins pts into square tiles of side ~cutoff/2 and counting-sorts
// the point indices by tile, reusing the receiver's buffers (the pooled
// MapInto path rebuilds one scratch Tiling per call).
func (tl *Tiling) build(pts []geom.Point, cutoff float64) {
	tl.n = len(pts)
	tl.cutoff = cutoff
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	// Plain compares: the points are pre-validated finite, so the
	// NaN/signed-zero semantics of math.Min/Max are not needed and the
	// calls would dominate this pass.
	for _, p := range pts {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	t := cutoff / 2
	if t <= 0 {
		t = 1
	}
	w, h := maxX-minX, maxY-minY
	if w > t*maxTileGridDim {
		t = w / maxTileGridDim
	}
	if h > t*maxTileGridDim {
		t = h / maxTileGridDim
	}
	nx := int(w/t) + 1
	ny := int(h/t) + 1

	tl.tileOf = growI32(tl.tileOf, len(pts))
	tl.counts = growI32(tl.counts, nx*ny)
	clear(tl.counts)
	invT := 1 / t
	for i, p := range pts {
		tx := clampI(int((p.X-minX)*invT), 0, nx-1)
		ty := clampI(int((p.Y-minY)*invT), 0, ny-1)
		id := int32(ty*nx + tx)
		tl.tileOf[i] = id
		tl.counts[id]++
	}
	tl.order = growI32(tl.order, len(pts))
	tl.tiles = tl.tiles[:0]
	start := int32(0)
	for id, n := range tl.counts {
		if n == 0 {
			continue
		}
		tl.tiles = append(tl.tiles, tile{
			cx: minX + (float64(id%nx)+0.5)*t,
			cy: minY + (float64(id/nx)+0.5)*t,
			lo: start,
			hi: start + n,
		})
		tl.counts[id] = start // repurpose as the running insert offset
		start += n
	}
	for i := range pts {
		id := tl.tileOf[i]
		tl.order[tl.counts[id]] = int32(i)
		tl.counts[id]++
	}
	tl.half = t * math.Sqrt2 / 2
}

// EvalTiles evaluates the selected field at every point of the listed
// tiles, writing into the matching dst slots and leaving all other
// slots untouched — the partial-recompute primitive behind the
// incremental engine. pts must be the point slice tl was built over
// (same length and order) and dst must match it; ids must be valid tile
// ids. Results are identical to the corresponding slots of a full
// MapInto (both paths run the same per-tile kernel).
//
// Cancellation is cooperative and checked per tile: when ctx is
// canceled or its deadline expires, at most one in-flight tile per
// worker finishes and the call returns a *CancelError (matching
// ErrCanceled) with partial-progress accounting; completed tiles hold
// valid values, the rest are untouched. A nil ctx disables
// cancellation. A panic inside a tile kernel is recovered on its worker
// goroutine and returned as a *PanicError instead of killing the
// process.
func (a *Analyzer) EvalTiles(ctx context.Context, dst []tensor.Stress, pts []geom.Point, tl *Tiling, ids []int32, mode Mode) error {
	if len(dst) != len(pts) {
		return errDstLen(len(dst), len(pts))
	}
	if tl.n != len(pts) {
		return fmt.Errorf("core: tiling partitions %d points, got %d", tl.n, len(pts))
	}
	for _, id := range ids {
		if id < 0 || int(id) >= len(tl.tiles) {
			return fmt.Errorf("core: tile id %d outside [0, %d)", id, len(tl.tiles))
		}
	}
	if len(ids) == 0 {
		return nil
	}
	doLS := mode == ModeLS || mode == ModeFull
	doPair := mode == ModeFull || mode == ModeInteractive
	return a.evalTileSet(ctx, dst, pts, tl, ids, doLS, doPair)
}

// tileCursor is the shared work-stealing state of one evalTileSet
// call: the queue cursor and the completed-tile count. It is pooled so
// a steady-state MapInto performs no per-call allocation — the atomics
// must live on the heap anyway (every worker goroutine addresses them),
// and pooling turns that into a one-time cost.
type tileCursor struct{ next, completed atomic.Int64 }

var cursorPool = sync.Pool{New: func() any { return new(tileCursor) }}

// nTilesFor and ctxDone exist so evalTileSet can bind these values in
// single-assignment locals: a variable reassigned after its declaration
// is captured by reference by the worker closures and forces an 8-byte
// heap allocation per call (the zero-alloc steady-state test catches
// this).
func nTilesFor(ids []int32, tl *Tiling) int {
	if ids == nil {
		return len(tl.tiles)
	}
	return len(ids)
}

func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// evalTileSet drains the tile queue (ids == nil means every tile) with
// the analyzer's worker budget; each worker owns one pooled scratch
// buffer set reused across its tiles. Between tiles every worker polls
// the context's done channel; a recovered worker panic wins over a
// concurrent cancellation.
func (a *Analyzer) evalTileSet(ctx context.Context, dst []tensor.Stress, pts []geom.Point, tl *Tiling, ids []int32, doLS, doPair bool) error {
	nTiles := nTilesFor(ids, tl)
	done := ctxDone(ctx)
	cur := cursorPool.Get().(*tileCursor)
	cur.next.Store(0)
	cur.completed.Store(0)
	workers := a.opt.Workers
	if workers > nTiles {
		workers = nTiles
	}
	var firstErr error
	if workers <= 1 {
		firstErr = a.drainTiles(dst, pts, tl, ids, nTiles, cur, done, doLS, doPair)
	} else {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				errs[w] = a.drainTiles(dst, pts, tl, ids, nTiles, cur, done, doLS, doPair)
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	completed := int(cur.completed.Load())
	cursorPool.Put(cur)
	if firstErr != nil {
		return firstErr
	}
	if n := completed; n < nTiles {
		cause := context.Canceled
		if ctx != nil && ctx.Err() != nil {
			cause = ctx.Err()
		}
		return &CancelError{TilesDone: n, TilesTotal: nTiles, Cause: cause}
	}
	return nil
}

// drainTiles pulls tiles from the shared cursor until the queue is
// empty or the done channel fires, recovering a tile-kernel panic into
// a *PanicError. The "core.tile.eval" fault-injection site fires once
// per tile (test-only: one atomic load when unarmed).
func (a *Analyzer) drainTiles(dst []tensor.Stress, pts []geom.Point, tl *Tiling, ids []int32, nTiles int, cur *tileCursor, done <-chan struct{}, doLS, doPair bool) (err error) {
	ts := a.getTileScratch()
	defer a.tilePool.Put(ts)
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	for {
		select {
		case <-done:
			return nil // reported as *CancelError by evalTileSet
		default:
		}
		k := cur.next.Add(1) - 1
		if k >= int64(nTiles) {
			return nil
		}
		if err := faultinject.Fire("core.tile.eval"); err != nil {
			return err
		}
		t := tl.tiles[k]
		if ids != nil {
			t = tl.tiles[ids[k]]
		}
		a.evalTile(dst, pts, tl.order, t, tl.half, doLS, doPair, ts)
		cur.completed.Add(1)
	}
}
