package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"tsvstress/internal/faultinject"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/tensor"
)

func cancelTestAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(60, 1e-2, 2*st.RPrime+1, 3)
	if err != nil {
		t.Fatal(err)
	}
	an, err := New(st, pl, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// TestMapIntoPreCanceled pins the fast path: a context that is already
// dead aborts before any tile work, on both the batched and the
// pointwise path.
func TestMapIntoPreCanceled(t *testing.T) {
	an := cancelTestAnalyzer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	pts := gridPoints(t, an.Placement, 1.0) // large: batched path
	dst := make([]tensor.Stress, len(pts))
	err := an.MapInto(ctx, dst, pts, ModeFull)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("batched MapInto(pre-canceled) = %v, want *CancelError", err)
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("CancelError does not match ErrCanceled and its cause: %v", err)
	}
	if ce.TilesDone != 0 {
		t.Fatalf("pre-canceled run completed %d tiles", ce.TilesDone)
	}

	small := pts[:4] // pointwise path
	err = an.MapInto(ctx, make([]tensor.Stress, len(small)), small, ModeFull)
	if !errors.As(err, &ce) || !errors.Is(err, ErrCanceled) {
		t.Fatalf("pointwise MapInto(pre-canceled) = %v, want *CancelError", err)
	}
}

// TestMapIntoDeadlineAbortsMidMap arms a per-tile delay so the map
// cannot finish inside its deadline, and checks the evaluation stops
// after a bounded number of tiles — within one tile's work per worker
// of the deadline — instead of running to completion. The analyzer
// must stay fully usable afterwards.
func TestMapIntoDeadlineAbortsMidMap(t *testing.T) {
	defer faultinject.Reset()
	an := cancelTestAnalyzer(t)
	pts := gridPoints(t, an.Placement, 1.0)
	dst := make([]tensor.Stress, len(pts))

	faultinject.Set("core.tile.eval", faultinject.Fault{Delay: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := an.MapInto(ctx, dst, pts, ModeFull)
	elapsed := time.Since(start)

	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("MapInto under deadline = %v, want *CancelError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CancelError cause = %v, want DeadlineExceeded", err)
	}
	if ce.TilesDone >= ce.TilesTotal || ce.TilesTotal == 0 {
		t.Fatalf("progress %d/%d does not reflect an aborted map", ce.TilesDone, ce.TilesTotal)
	}
	// With 5ms per tile, a non-cooperative run would take TilesTotal×5ms
	// on 2 workers; the abort must land near the 25ms deadline plus at
	// most ~one in-flight tile per worker.
	if budget := 25*time.Millisecond + 10*2*5*time.Millisecond; elapsed > budget {
		t.Fatalf("aborted map took %v, want ≤ %v (tiles %d)", elapsed, budget, ce.TilesTotal)
	}
	faultinject.Reset()

	// The analyzer is stateless across calls: a clean retry matches a
	// fresh evaluation exactly.
	want := an.Map(pts, ModeFull)
	if err := an.MapInto(context.Background(), dst, pts, ModeFull); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	for i := range dst {
		if d := maxAbsDiff(dst[i], want[i]); d > 0 {
			t.Fatalf("retry slot %d differs by %g", i, d)
		}
	}
}

// TestMapIntoNilContext pins that nil disables cancellation (the
// internal callers' contract).
func TestMapIntoNilContext(t *testing.T) {
	an := cancelTestAnalyzer(t)
	pts := gridPoints(t, an.Placement, 2.0)
	if err := an.MapInto(nil, make([]tensor.Stress, len(pts)), pts, ModeFull); err != nil { //nolint:staticcheck
		t.Fatalf("MapInto(nil ctx) = %v", err)
	}
}

// TestKernelPanicContained injects a panic into a tile kernel and
// checks it surfaces as a *PanicError — not a dead process, and not a
// cancellation.
func TestKernelPanicContained(t *testing.T) {
	defer faultinject.Reset()
	an := cancelTestAnalyzer(t)
	pts := gridPoints(t, an.Placement, 1.0)
	dst := make([]tensor.Stress, len(pts))

	faultinject.Set("core.tile.eval", faultinject.Fault{Panic: "tile kernel exploded", Times: 1})
	err := an.MapInto(context.Background(), dst, pts, ModeFull)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("MapInto with panicking kernel = %v, want *PanicError", err)
	}
	if pe.Value != "tile kernel exploded" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {%v, %d-byte stack}", pe.Value, len(pe.Stack))
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("a contained panic must not match ErrCanceled")
	}

	// Contained means contained: the analyzer serves the next call.
	if err := an.MapInto(context.Background(), dst, pts, ModeFull); err != nil {
		t.Fatalf("MapInto after contained panic: %v", err)
	}
}
