package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// soaParityTol is the agreement budget between the SoA lane kernels and
// the scalar oracle, in MPa. The two paths reassociate floating-point
// work differently (lane accumulators, packed Horner recurrences, the
// bounded harmonic truncation), so exact equality is not expected;
// 1e-9 MPa is ~12 orders below the ~100 MPa fields of interest.
const soaParityTol = 1e-9

// randomPlacement builds a jittered-grid placement that respects the
// minimum TSV spacing (2·R′) by construction: grid pitch minus jitter
// stays above it.
func randomPlacement(rng *rand.Rand, st material.Structure, nx, ny int) *geom.Placement {
	pitch := 2*st.RPrime + 2 + 6*rng.Float64()
	jit := (pitch - 2*st.RPrime - 0.5) / 2
	pts := make([]geom.Point, 0, nx*ny)
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			pts = append(pts, geom.Pt(
				float64(ix)*pitch+jit*(2*rng.Float64()-1),
				float64(iy)*pitch+jit*(2*rng.Float64()-1),
			))
		}
	}
	return geom.NewPlacement(pts...)
}

// Differential property test for the tentpole kernel rewrite: over
// randomized placements, cutoffs and MMax, the batched SoA engine must
// match the scalar tile kernel (Options.ScalarKernel) within the parity
// budget at every point and in every mode. The point set mixes uniform
// coverage with points snapped near TSV centers and footprint edges,
// where the interior/exterior classification and the r == 0 branch are
// exercised.
func TestSoAMatchesScalarKernel(t *testing.T) {
	st := material.Baseline(material.BCB)
	rng := rand.New(rand.NewSource(20130607))
	for trial := 0; trial < 8; trial++ {
		pl := randomPlacement(rng, st, 3+rng.Intn(3), 3+rng.Intn(3))
		opt := Options{
			LSCutoff:        10 + 30*rng.Float64(),
			PairPitchCutoff: 10 + 30*rng.Float64(),
			PairDistCutoff:  10 + 30*rng.Float64(),
			MMax:            2 + rng.Intn(12),
			Workers:         1 + rng.Intn(4),
		}
		soa, err := New(st, pl, opt)
		if err != nil {
			t.Fatal(err)
		}
		sopt := opt
		sopt.ScalarKernel = true
		scalar, err := New(st, pl, sopt)
		if err != nil {
			t.Fatal(err)
		}

		span := 6.0 * (2*st.RPrime + 10)
		pts := make([]geom.Point, 0, 400)
		for i := 0; i < 300; i++ {
			pts = append(pts, geom.Pt(span*rng.Float64()-5, span*rng.Float64()-5))
		}
		for i := 0; i < 60; i++ {
			c := pl.TSVs[rng.Intn(pl.Len())].Center
			switch i % 3 {
			case 0: // exact center: the d² == 0 branch
				pts = append(pts, c)
			case 1: // just inside/outside the footprint edge
				ang := 2 * math.Pi * rng.Float64()
				r := st.RPrime * (0.98 + 0.04*rng.Float64())
				pts = append(pts, geom.Pt(c.X+r*math.Cos(ang), c.Y+r*math.Sin(ang)))
			default: // interior
				pts = append(pts, geom.Pt(c.X+0.5*st.RPrime*(2*rng.Float64()-1), c.Y))
			}
		}

		for _, mode := range []Mode{ModeLS, ModeInteractive, ModeFull} {
			got := soa.Map(pts, mode)
			want := scalar.Map(pts, mode)
			for i := range pts {
				if d := stressDiff(got[i], want[i]); d > soaParityTol {
					t.Fatalf("trial %d mode %d: SoA kernel diverges from scalar oracle at %v by %g MPa\n soa=%+v\n ref=%+v",
						trial, mode, pts[i], d, got[i], want[i])
				}
			}
		}
	}
}

func stressDiff(a, b tensor.Stress) float64 {
	return math.Max(math.Abs(a.XX-b.XX), math.Max(math.Abs(a.YY-b.YY), math.Abs(a.XY-b.XY)))
}

// The batched engine must not allocate per call once its scratch pools
// are warm: lanes and candidate buffers are grow-only and the Tiling is
// pooled, so a steady-state sweep (the incremental engine's flush loop,
// the server's session evaluations) stays off the garbage collector.
// Workers: 1 keeps goroutine spawning out of the measurement;
// AllocsPerRun pins GOMAXPROCS to 1 anyway.
func TestMapIntoZeroAllocSteadyState(t *testing.T) {
	st := material.Baseline(material.BCB)
	rng := rand.New(rand.NewSource(7))
	an, err := New(st, randomPlacement(rng, st, 4, 4), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geom.Point, 2048)
	for i := range pts {
		pts[i] = geom.Pt(60*rng.Float64(), 60*rng.Float64())
	}
	dst := make([]tensor.Stress, len(pts))
	ctx := context.Background()
	if err := an.MapInto(ctx, dst, pts, ModeFull); err != nil { // warm pools
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if err := an.MapInto(ctx, dst, pts, ModeFull); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("MapInto allocates %.1f times per steady-state call, want 0", avg)
	}
}
