package core

import (
	"context"
	"math/rand"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/tensor"
)

func TestPartitionTilesShapes(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 1}, {0, 4}, {1, 1}, {1, 3}, {7, 2}, {10, 10}, {10, 13}, {1000, 7}, {5, 0}, {5, -2},
	} {
		shards := PartitionTiles(tc.n, tc.k)
		wantShards := tc.k
		if wantShards < 1 {
			wantShards = 1
		}
		if len(shards) != wantShards {
			t.Fatalf("PartitionTiles(%d,%d): %d shards, want %d", tc.n, tc.k, len(shards), wantShards)
		}
		seen := make(map[int32]bool, tc.n)
		minSize, maxSize := tc.n, 0
		for _, sh := range shards {
			if sh == nil {
				t.Fatalf("PartitionTiles(%d,%d): nil shard", tc.n, tc.k)
			}
			if len(sh) < minSize {
				minSize = len(sh)
			}
			if len(sh) > maxSize {
				maxSize = len(sh)
			}
			for _, id := range sh {
				if id < 0 || int(id) >= tc.n {
					t.Fatalf("PartitionTiles(%d,%d): id %d out of range", tc.n, tc.k, id)
				}
				if seen[id] {
					t.Fatalf("PartitionTiles(%d,%d): id %d in two shards", tc.n, tc.k, id)
				}
				seen[id] = true
			}
		}
		if len(seen) != tc.n {
			t.Fatalf("PartitionTiles(%d,%d): covers %d ids", tc.n, tc.k, len(seen))
		}
		if tc.n >= wantShards && maxSize-minSize > 1 {
			t.Fatalf("PartitionTiles(%d,%d): shard sizes range [%d,%d], want balanced ±1", tc.n, tc.k, minSize, maxSize)
		}
		// Determinism: a second call yields the identical partition.
		again := PartitionTiles(tc.n, tc.k)
		for s := range shards {
			if len(again[s]) != len(shards[s]) {
				t.Fatalf("PartitionTiles(%d,%d): shard %d size changed between calls", tc.n, tc.k, s)
			}
			for i := range shards[s] {
				if again[s][i] != shards[s][i] {
					t.Fatalf("PartitionTiles(%d,%d): nondeterministic shard %d", tc.n, tc.k, s)
				}
			}
		}
	}
}

// TestShardedEvalMatchesMapInto is the cluster-tier correctness
// property: partition the tiles across k shards, evaluate each shard
// independently (its own destination buffer, as a remote worker would),
// serialize each tile through the wire records, and merge the records
// in a random completion order. The merged grid must reproduce the
// unsharded MapInto bit-for-bit — the per-tile kernel is deterministic
// and shards neither share state nor order.
func TestShardedEvalMatchesMapInto(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(90, 1e-2, 2*st.RPrime+1, 23)
	if err != nil {
		t.Fatal(err)
	}
	an, err := New(st, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pts := gridPoints(t, pl, 1.25)
	tl, err := NewTiling(pts, an.Options().GatherCutoff(ModeFull))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]tensor.Stress, len(pts))
	if err := an.MapInto(context.Background(), want, pts, ModeFull); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	for _, k := range []int{1, 2, 4, 7} {
		shards := tl.Partition(k)
		// Each shard evaluates into its own buffer and emits wire records,
		// exactly what a worker process does.
		var records [][]byte
		for _, ids := range shards {
			if len(ids) == 0 {
				continue
			}
			buf := make([]tensor.Stress, len(pts))
			if err := an.EvalTiles(context.Background(), buf, pts, tl, ids, ModeFull); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			for _, id := range ids {
				records = append(records, tl.AppendTileResult(nil, id, buf))
			}
		}
		// Merge in a random completion order.
		rng.Shuffle(len(records), func(i, j int) { records[i], records[j] = records[j], records[i] })
		got := make([]tensor.Stress, len(pts))
		for _, rec := range records {
			id, vals, rest, err := ReadTileResult(rec)
			if err != nil {
				t.Fatalf("k=%d: decode: %v", k, err)
			}
			if len(rest) != 0 {
				t.Fatalf("k=%d: %d trailing bytes after tile %d", k, len(rest), id)
			}
			if err := tl.ScatterTileResult(id, vals, got); err != nil {
				t.Fatalf("k=%d: scatter: %v", k, err)
			}
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d: point %d: sharded %+v != unsharded %+v", k, i, got[i], want[i])
			}
		}
	}
}

func TestTileResultRoundTripAndErrors(t *testing.T) {
	pl := placegenMust(t)
	pts := gridPoints(t, pl, 2)
	tl, err := NewTiling(pts, 25)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]tensor.Stress, len(pts))
	for i := range dst {
		dst[i] = tensor.Stress{XX: float64(i), YY: -float64(i), XY: 0.5 * float64(i)}
	}
	var buf []byte
	for id := 0; id < tl.NumTiles(); id++ {
		start := len(buf)
		buf = tl.AppendTileResult(buf, int32(id), dst)
		if got, want := len(buf)-start, tl.TileResultLen(int32(id)); got != want {
			t.Fatalf("tile %d: encoded %d bytes, TileResultLen says %d", id, got, want)
		}
	}
	got := make([]tensor.Stress, len(pts))
	rest := buf
	for len(rest) > 0 {
		var id int32
		var vals []tensor.Stress
		id, vals, rest, err = ReadTileResult(rest)
		if err != nil {
			t.Fatal(err)
		}
		if err := tl.ScatterTileResult(id, vals, got); err != nil {
			t.Fatal(err)
		}
	}
	for i := range got {
		if got[i] != dst[i] {
			t.Fatalf("round trip diverged at %d", i)
		}
	}

	// Malformed input must error, never panic.
	if _, _, _, err := ReadTileResult(buf[:5]); err == nil {
		t.Error("truncated header accepted")
	}
	bad := tl.AppendTileResult(nil, 0, dst)
	bad = bad[:len(bad)-1] // truncate the payload
	if _, _, _, err := ReadTileResult(bad); err == nil {
		t.Error("truncated payload accepted")
	}
	// A record whose count disagrees with the tile geometry must be
	// rejected at scatter.
	id0, vals, _, err := ReadTileResult(tl.AppendTileResult(nil, 0, dst))
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.ScatterTileResult(id0, vals[:len(vals)-1], got); err == nil && len(vals) > 0 {
		t.Error("short value slice accepted by scatter")
	}
	if err := tl.ScatterTileResult(int32(tl.NumTiles()), vals, got); err == nil {
		t.Error("out-of-range tile id accepted by scatter")
	}
	if err := tl.ScatterTileResult(id0, vals, got[:1]); err == nil {
		t.Error("short dst accepted by scatter")
	}
}

func placegenMust(t *testing.T) *geom.Placement {
	t.Helper()
	pl, err := placegen.Random(40, 1e-2, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}
