package core

import (
	"context"
	"testing"

	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/tensor"
)

// fullChipSetup builds the ISSUE-scale case: 1000 TSVs at the paper's
// 1e-2/µm² density with a ≥200k-point device-layer grid.
func fullChipSetup(b *testing.B) (*Analyzer, []geom.Point) {
	b.Helper()
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(1000, 1e-2, 2*st.RPrime+1, 2013)
	if err != nil {
		b.Fatal(err)
	}
	a, err := New(st, pl, Options{})
	if err != nil {
		b.Fatal(err)
	}
	region := pl.Bounds(5)
	// Spacing chosen so the masked grid carries at least 200k points.
	spacing := 0.55
	g, err := field.NewGrid(region, spacing)
	if err != nil {
		b.Fatal(err)
	}
	// Simulation points are device-layer silicon locations outside the
	// TSV footprints (DESIGN.md §2), as cmd/tsvstress masks by default.
	pts := field.Masked(g.Points(), field.OutsideTSVs(pl, st.RPrime))
	if len(pts) < 200_000 {
		b.Fatalf("grid has %d points, want >= 200k", len(pts))
	}
	return a, pts
}

func benchMap(b *testing.B, mode Mode, pointwise bool) {
	a, pts := fullChipSetup(b)
	dst := make([]tensor.Stress, len(pts))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pointwise {
			a.mapPointwise(context.Background(), dst, pts, mode)
		} else {
			if err := a.MapInto(context.Background(), dst, pts, mode); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	nsPerPoint := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(pts))
	b.ReportMetric(nsPerPoint, "ns/point")
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkFullChipMap tracks the full-chip sweep throughput across
// PRs: LS and Full modes through the tile-batched engine, with the
// pre-change pointwise path as the reference the ≥2× acceptance
// criterion is measured against.
func BenchmarkFullChipMap(b *testing.B) {
	b.Run("ls-batched", func(b *testing.B) { benchMap(b, ModeLS, false) })
	b.Run("full-batched", func(b *testing.B) { benchMap(b, ModeFull, false) })
	b.Run("ls-pointwise", func(b *testing.B) { benchMap(b, ModeLS, true) })
	b.Run("full-pointwise", func(b *testing.B) { benchMap(b, ModeFull, true) })
}
