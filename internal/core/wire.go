package core

// Tile-result serialization: the unit of exchange between a cluster
// worker and its coordinator. A record carries one tile's stress values
// in the tiling's TilePoints order, so both ends only need the shared
// (points, cutoff)-deterministic Tiling to agree on which dst slots the
// payload fills — tile ids and point counts travel, point indices never
// do. Layout (little-endian):
//
//	u32 tile id | u32 point count | count × (f64 XX, f64 YY, f64 XY)
//
// The decoder is fuzz-hardened: it validates the declared count against
// the remaining bytes before allocating, so a hostile length cannot
// force an oversized allocation or a panic.

import (
	"encoding/binary"
	"fmt"
	"math"

	"tsvstress/internal/tensor"
)

// tileResultHeaderLen is the fixed prefix of a tile-result record:
// u32 tile id + u32 point count.
const tileResultHeaderLen = 8

// stressWireLen is the encoded size of one tensor.Stress.
const stressWireLen = 24

// AppendTileResult appends the wire record for tile id of this tiling,
// reading the tile's values from the full-length dst slice (the same
// slice EvalTiles wrote). dst must match the tiling's point count; id
// must be a valid tile id.
//
//tsvlint:allocfree
func (tl *Tiling) AppendTileResult(buf []byte, id int32, dst []tensor.Stress) []byte {
	pts := tl.TilePoints(int(id))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pts)))
	for _, oi := range pts {
		s := dst[oi]
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.XX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.YY))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.XY))
	}
	return buf
}

// TileResultLen returns the encoded size of tile id's record.
func (tl *Tiling) TileResultLen(id int32) int {
	return tileResultHeaderLen + stressWireLen*len(tl.TilePoints(int(id)))
}

// AppendTileResultVals appends the wire record for already-gathered
// tile values — the tiling-free twin of AppendTileResult, for callers
// (re-encoders, tests) that hold decoded records rather than a full
// dst slice.
//
//tsvlint:allocfree
func AppendTileResultVals(buf []byte, id int32, vals []tensor.Stress) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vals)))
	for _, s := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.XX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.YY))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.XY))
	}
	return buf
}

// ReadTileResult decodes one tile-result record from the front of data,
// returning the tile id, the decoded values (in TilePoints order) and
// the remaining bytes. It never panics on malformed input; a truncated
// or inconsistent record yields an error.
func ReadTileResult(data []byte) (id int32, vals []tensor.Stress, rest []byte, err error) {
	id, slab, rest, err := ReadTileResultAppend(data, nil)
	return id, slab, rest, err
}

// ReadTileResultAppend decodes one tile-result record from the front of
// data, appending the values to slab instead of allocating — the
// steady-state decode path of the cluster coordinator, which drains a
// whole result batch into one reusable slab. The record's values are
// slab[len(slab):] of the returned slice.
//
// Callers that retain sub-slices of slab across several calls must
// pre-grow its capacity (the batch decoder sizes it from the payload
// length): an append that reallocates would strand earlier sub-slices
// in the old array.
//
//tsvlint:allocfree
func ReadTileResultAppend(data []byte, slab []tensor.Stress) (id int32, slabOut []tensor.Stress, rest []byte, err error) {
	if len(data) < tileResultHeaderLen {
		return 0, slab, nil, fmt.Errorf("core: tile result truncated: %d bytes", len(data))
	}
	id = int32(binary.LittleEndian.Uint32(data))
	n := binary.LittleEndian.Uint32(data[4:])
	body := data[tileResultHeaderLen:]
	// Validate the count against what actually arrived before allocating.
	if uint64(n)*stressWireLen > uint64(len(body)) {
		return 0, slab, nil, fmt.Errorf("core: tile %d result declares %d points, only %d bytes follow", id, n, len(body))
	}
	for i := 0; i < int(n); i++ {
		off := i * stressWireLen
		slab = append(slab, tensor.Stress{
			XX: math.Float64frombits(binary.LittleEndian.Uint64(body[off:])),
			YY: math.Float64frombits(binary.LittleEndian.Uint64(body[off+8:])),
			XY: math.Float64frombits(binary.LittleEndian.Uint64(body[off+16:])),
		})
	}
	return id, slab, body[int(n)*stressWireLen:], nil
}

// StressWireLen is the encoded size of one stress value — what a batch
// decoder needs to bound a payload's value count before allocating.
const StressWireLen = stressWireLen

// ScatterTileResult writes a decoded tile record into dst at the slots
// tile id owns. vals must hold exactly the tile's point count (the
// decoder cannot check that — only the tiling knows the geometry), and
// dst must span the tiling's full point set; a mismatch is an error,
// never a partial write.
func (tl *Tiling) ScatterTileResult(id int32, vals []tensor.Stress, dst []tensor.Stress) error {
	if id < 0 || int(id) >= len(tl.tiles) {
		return fmt.Errorf("core: scatter tile id %d outside [0, %d)", id, len(tl.tiles))
	}
	if len(dst) != tl.n {
		return fmt.Errorf("core: scatter dst has %d slots for %d points", len(dst), tl.n)
	}
	pts := tl.TilePoints(int(id))
	if len(vals) != len(pts) {
		return fmt.Errorf("core: tile %d holds %d points, result carries %d", id, len(pts), len(vals))
	}
	for i, oi := range pts {
		dst[oi] = vals[i]
	}
	return nil
}
