//tsvlint:hotpath

package core

import (
	"context"
	"math"

	"tsvstress/internal/floats"
	"tsvstress/internal/geom"
	"tsvstress/internal/interact"
	"tsvstress/internal/tensor"
)

// The tile-batched evaluation engine behind Map/MapInto.
//
// Pointwise evaluation pays a 3×3 spatial-hash query per stage per
// point plus an Atan2 per Stage I contribution. The batched engine
// instead partitions the query points into square spatial tiles, and
// per tile gathers once (a) the TSVs that can contribute to Stage I for
// any point in the tile and (b) the victims whose pair rounds can
// contribute to Stage II — using radius cutoff + tile half-diagonal.
// Tile points are then evaluated in tight loops over structure-of-
// arrays candidate data: the per-point membership test collapses to one
// squared-distance compare (the same `d² ≤ cutoff²` the hash query
// performs, so inclusion decisions are bit-identical to the pointwise
// path), rotations derive cos φ/sin φ from the relative vector and r
// with no Atan2, and Stage II runs through interact.VictimRounds slabs.
//
// Tiles are drained from a shared queue with an atomic cursor, so idle
// workers steal whatever tile is next regardless of cost imbalance, and
// every worker owns one scratch buffer set reused across its tiles.

// pointwiseBatchThreshold is the point count below which tiling
// overhead is not worth it and Map falls back to the pointwise path.
const pointwiseBatchThreshold = 32

// maxTileGridDim caps the tile grid along either axis so pathological
// extents cannot blow up the counting-sort arrays; the tile size grows
// instead.
const maxTileGridDim = 1024

// tileSlack absorbs floating-point rounding in the gather radius and
// the point→tile binning, keeping the candidate list a strict superset
// of every point's true neighbor set.
const tileSlack = 1e-6

// tile is one spatial cell: its center and its range in the
// tile-sorted point order.
type tile struct {
	cx, cy float64
	lo, hi int32
}

// tileScratch is one worker's reusable candidate buffers plus the
// per-tile point and accumulator lanes of the SoA kernel. All buffers
// are grow-only, so a worker that has seen the largest tile once never
// allocates again (the zero-alloc property the allocation test pins).
type tileScratch struct {
	lsIdx    []int32
	vicIdx   []int32
	lsX, lsY []float64
	vicX     []float64
	vicY     []float64
	rounds   []*interact.VictimRounds

	// SoA lanes, one slot per tile point in tile (order) position:
	// gathered coordinates and the three stress-component accumulators.
	px, py        []float64
	sxx, syy, sxy []float64
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MapInto evaluates the selected field at every point into dst, which
// must have the same length as pts. It is the streaming variant of Map:
// large sweeps reuse one destination buffer across calls instead of
// materializing a fresh slice per evaluation. Results are identical to
// calling StressLS/StressAt/Interactive per point (to round-off; the
// parity test pins the agreement to 1e-9 MPa).
//
// Cancellation is cooperative, checked per tile (see EvalTiles): a
// canceled ctx yields a *CancelError matching ErrCanceled, with dst
// partially written. A nil ctx disables cancellation. Kernel panics are
// contained as *PanicError.
func (a *Analyzer) MapInto(ctx context.Context, dst []tensor.Stress, pts []geom.Point, mode Mode) error {
	if len(dst) != len(pts) {
		return errDstLen(len(dst), len(pts))
	}
	// A NaN/Inf coordinate would poison the tile binning (int(NaN) is
	// unspecified and can produce a negative grid size), so reject the
	// batch up front instead of panicking mid-partition.
	for i := range pts {
		if !floats.IsFinite(pts[i].X) || !floats.IsFinite(pts[i].Y) {
			return errNonFinitePoint(i, pts[i])
		}
	}
	if len(pts) == 0 {
		return nil
	}
	if len(pts) <= pointwiseBatchThreshold {
		return a.mapPointwise(ctx, dst, pts, mode)
	}
	return a.mapBatched(ctx, dst, pts, mode)
}

func (a *Analyzer) mapBatched(ctx context.Context, dst []tensor.Stress, pts []geom.Point, mode Mode) error {
	doLS := mode == ModeLS || mode == ModeFull
	doPair := mode == ModeFull || mode == ModeInteractive
	cutoff := a.opt.GatherCutoff(mode)

	tl, _ := a.mapPool.Get().(*Tiling)
	if tl == nil {
		tl = &Tiling{}
	}
	tl.build(pts, cutoff)
	err := a.evalTileSet(ctx, dst, pts, tl, nil, doLS, doPair)
	a.mapPool.Put(tl)
	return err
}

func (a *Analyzer) getTileScratch() *tileScratch {
	ts, _ := a.tilePool.Get().(*tileScratch)
	if ts == nil {
		ts = &tileScratch{}
	}
	return ts
}

// evalTile gathers the tile's candidate lists once and evaluates every
// tile point against them, through the SoA lane kernel by default or
// the scalar oracle under Options.ScalarKernel (ExactLS also forces the
// scalar Stage I path: there is no radial table to inline).
//
//tsvlint:allocfree
func (a *Analyzer) evalTile(dst []tensor.Stress, pts []geom.Point, order []int32, t tile, halfDiag float64, doLS, doPair bool, ts *tileScratch) {
	ls2 := a.opt.LSCutoff * a.opt.LSCutoff
	pd2 := a.opt.PairDistCutoff * a.opt.PairDistCutoff
	a.gatherTile(t, halfDiag, doLS, doPair, ts)
	if a.opt.ScalarKernel || (doLS && a.lsRR == nil) {
		a.evalTileScalar(dst, pts, order, t, ls2, pd2, doLS, doPair, ts)
		return
	}
	a.evalTileSoA(dst, pts, order, t, ls2, pd2, doLS, doPair, ts)
}

// gatherTile collects the tile's Stage I and Stage II candidates into
// the scratch lanes: TSV centers within cutoff + tile half-diagonal of
// the tile center (a strict superset of every tile point's neighbor
// set; the per-point d² compare makes the final call).
//
//tsvlint:allocfree
func (a *Analyzer) gatherTile(t tile, halfDiag float64, doLS, doPair bool, ts *tileScratch) {
	center := geom.Pt(t.cx, t.cy)
	if doLS {
		ts.lsIdx = a.idx.AppendNear(ts.lsIdx[:0], center, a.opt.LSCutoff+halfDiag+tileSlack)
		ts.lsX, ts.lsY = ts.lsX[:0], ts.lsY[:0]
		for _, i := range ts.lsIdx {
			c := a.idx.At(int(i))
			ts.lsX = append(ts.lsX, c.X)
			ts.lsY = append(ts.lsY, c.Y)
		}
	}
	if doPair {
		ts.vicIdx = a.idx.AppendNear(ts.vicIdx[:0], center, a.opt.PairDistCutoff+halfDiag+tileSlack)
		ts.vicX, ts.vicY, ts.rounds = ts.vicX[:0], ts.vicY[:0], ts.rounds[:0]
		for _, j := range ts.vicIdx {
			vr := a.victimRounds[j]
			if vr == nil {
				continue
			}
			c := a.idx.At(int(j))
			ts.vicX = append(ts.vicX, c.X)
			ts.vicY = append(ts.vicY, c.Y)
			ts.rounds = append(ts.rounds, vr)
		}
	}
}

// evalTileScalar is the pre-SoA point-outer tile kernel, retained as
// the parity oracle for the lane kernels (Options.ScalarKernel) and as
// the Stage I path of ExactLS mode. The differential property test
// pins the SoA path against it at ≤1e-9 MPa.
//
//tsvlint:allocfree
func (a *Analyzer) evalTileScalar(dst []tensor.Stress, pts []geom.Point, order []int32, t tile, ls2, pd2 float64, doLS, doPair bool, ts *tileScratch) {
	lsX, lsY := ts.lsX, ts.lsY
	vicX, vicY, rounds := ts.vicX, ts.vicY, ts.rounds
	for _, oi := range order[t.lo:t.hi] {
		p := pts[oi]
		var s tensor.Stress
		if doLS {
			var sxx, syy, sxy float64
			for k := range lsX {
				dx := p.X - lsX[k]
				dy := p.Y - lsY[k]
				d2 := dx*dx + dy*dy
				if d2 > ls2 {
					continue
				}
				if d2 == 0 {
					// Point at a TSV center: uniform body stress, no
					// rotation (matches the pointwise r == 0 branch).
					pol := a.LS.Polar(0)
					sxx += pol.RR
					syy += pol.TT
					continue
				}
				r := math.Sqrt(d2)
				pol := a.LS.Polar(r)
				cphi, sphi := dx/r, dy/r
				c2, s2, cs := cphi*cphi, sphi*sphi, cphi*sphi
				// σrθ ≡ 0 for the axisymmetric single-TSV field.
				sxx += pol.RR*c2 + pol.TT*s2
				syy += pol.RR*s2 + pol.TT*c2
				sxy += (pol.RR - pol.TT) * cs
			}
			s.XX, s.YY, s.XY = sxx, syy, sxy
		}
		if doPair {
			for k := range vicX {
				dx := p.X - vicX[k]
				dy := p.Y - vicY[k]
				if dx*dx+dy*dy > pd2 {
					continue
				}
				rounds[k].AccumulateAt(p.X, p.Y, &s)
			}
		}
		dst[oi] = s
	}
}

// evalTileSoA is the data-oriented tile kernel: tile points are
// gathered once into contiguous coordinate lanes, three stress-component
// accumulator lanes are walked linearly by candidate-outer loops, and
// results scatter back through the tile order exactly once. Stage I
// inlines the radial-table interpolation (captured as a.lsRR/lsTT
// lanes) with the rotation rewritten on 1/d², so a contributing
// candidate costs one sqrt and one division and no method calls; the
// d² compares, the d² == 0 branch and the knot clamping reproduce the
// scalar kernel's inclusion decisions exactly. Stage II dispatches one
// AccumulateTile lane sweep per victim (see interact.VictimRounds).
// Per-point results differ from the scalar oracle only in round-off
// and the bounded Stage II truncation — the parity budget stays 1e-9.
//
//tsvlint:allocfree
func (a *Analyzer) evalTileSoA(dst []tensor.Stress, pts []geom.Point, order []int32, t tile, ls2, pd2 float64, doLS, doPair bool, ts *tileScratch) {
	ord := order[t.lo:t.hi]
	n := len(ord)
	ts.px = growF64(ts.px, n)
	ts.py = growF64(ts.py, n)
	ts.sxx = growF64(ts.sxx, n)
	ts.syy = growF64(ts.syy, n)
	ts.sxy = growF64(ts.sxy, n)
	px, py := ts.px[:n], ts.py[:n]
	sxx, syy, sxy := ts.sxx[:n], ts.syy[:n], ts.sxy[:n]
	for i, oi := range ord {
		px[i] = pts[oi].X
		py[i] = pts[oi].Y
	}
	clear(sxx)
	clear(syy)
	clear(sxy)
	if doLS {
		rrT, ttT, invStep := a.lsRR, a.lsTT, a.lsInvStep
		last := len(rrT) - 2
		rr0, tt0 := rrT[0], ttT[0]
		for k := range ts.lsX {
			cx, cy := ts.lsX[k], ts.lsY[k]
			for i := 0; i < n; i++ {
				dx := px[i] - cx
				dy := py[i] - cy
				d2 := dx*dx + dy*dy
				if d2 > ls2 {
					continue
				}
				if d2 == 0 {
					// Point at a TSV center: uniform body stress, no
					// rotation (matches the pointwise r == 0 branch).
					sxx[i] += rr0
					syy[i] += tt0
					continue
				}
				r := math.Sqrt(d2)
				f := r * invStep
				j := int(f)
				if j > last {
					j = last
				}
				w := f - float64(j)
				om := 1 - w
				prr := rrT[j]*om + rrT[j+1]*w
				ptt := ttT[j]*om + ttT[j+1]*w
				d2inv := 1 / d2
				c2 := dx * dx * d2inv
				s2 := dy * dy * d2inv
				cs := dx * dy * d2inv
				// σrθ ≡ 0 for the axisymmetric single-TSV field.
				sxx[i] += prr*c2 + ptt*s2
				syy[i] += prr*s2 + ptt*c2
				sxy[i] += (prr - ptt) * cs
			}
		}
	}
	if doPair {
		for k := range ts.rounds {
			ts.rounds[k].AccumulateTile(px, py, sxx, syy, sxy, pd2)
		}
	}
	for i, oi := range ord {
		dst[oi] = tensor.Stress{XX: sxx[i], YY: syy[i], XY: sxy[i]}
	}
}
