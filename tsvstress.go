// Package tsvstress is an accurate semi-analytical framework for
// full-chip TSV-induced stress modeling, reproducing Li & Pan,
// "An Accurate Semi-Analytical Framework for Full-Chip TSV-induced
// Stress Modeling" (DAC 2013).
//
// Through-silicon vias (TSVs) induce thermo-mechanical stress in 3D ICs
// because the thermal expansion of the copper via, its dielectric liner
// and the silicon substrate differ. This package computes that stress
// on the device layer for full-chip placements:
//
//   - the classic linear-superposition baseline (each TSV contributes
//     its isolated analytical field), and
//   - the paper's proposed two-stage framework, which additionally
//     models the *interactive stress* between nearby TSV pairs with a
//     Muskhelishvili complex-potential series, recovering most of the
//     error linear superposition makes at tight pitch.
//
// An in-house plane-stress finite-element solver (the stand-in for the
// paper's COMSOL golden reference) is exposed for validation, together
// with the error metrics of the paper's evaluation.
//
// Quick start:
//
//	st := tsvstress.Baseline(tsvstress.BCB)
//	pl := tsvstress.NewPlacement(tsvstress.Pt(0, 0), tsvstress.Pt(10, 0))
//	an, err := tsvstress.NewAnalyzer(st, pl, tsvstress.AnalyzerOptions{})
//	if err != nil { ... }
//	s := an.StressAt(tsvstress.Pt(5, 2)) // full framework (LS + interactive)
//	fmt.Println(s.XX, s.VonMises())
//
// Full-chip sweeps go through an.Map (or the streaming an.MapInto,
// which reuses a caller-owned buffer): a tile-batched parallel engine
// that gathers nearby-TSV and pair-round candidates once per spatial
// tile and aggregates each victim's rounds per harmonic — orders of
// magnitude faster than per-point evaluation at paper densities, and
// pinned to the pointwise evaluators within 1e-9 MPa.
//
// Lengths are in µm, moduli and stresses in MPa, temperatures in K.
package tsvstress

//tsvlint:apiboundary

import (
	"context"

	"tsvstress/internal/core"
	"tsvstress/internal/fem"
	"tsvstress/internal/geom"
	"tsvstress/internal/interact"
	"tsvstress/internal/lame"
	"tsvstress/internal/material"
	"tsvstress/internal/metrics"
	"tsvstress/internal/mobility"
	"tsvstress/internal/optimize"
	"tsvstress/internal/placegen"
	"tsvstress/internal/reliability"
	"tsvstress/internal/tensor"
)

// Re-exported core types. Aliases keep the public surface in one import
// while the implementation stays in focused internal packages.
type (
	// Material is a linear-elastic isotropic material (E in MPa, ν,
	// CTE in 1/K).
	Material = material.Material
	// Structure is a TSV cross-section: body radius, liner, substrate
	// and thermal load.
	Structure = material.Structure
	// Point is a device-layer location in µm.
	Point = geom.Point
	// Placement is a set of TSVs sharing one structure.
	Placement = geom.Placement
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Stress is a plane-stress tensor in MPa.
	Stress = tensor.Stress
	// Analyzer is the full-chip stress analyzer (Algorithm 1).
	Analyzer = core.Analyzer
	// AnalyzerOptions configures the analyzer; the zero value is the
	// paper's configuration.
	AnalyzerOptions = core.Options
	// SingleTSV is the analytical single-TSV solution (Eq. 6).
	SingleTSV = lame.Solution
	// InteractModel is the interactive-stress model of a TSV pair.
	InteractModel = interact.Model
	// ErrorStats summarizes method-vs-golden error.
	ErrorStats = metrics.Stats
	// FEMOptions configures the finite-element golden solver.
	FEMOptions = fem.Options
	// FEMResult is a solved finite-element stress field.
	FEMResult = fem.Result
	// FEMField is any stress field that can be sampled pointwise.
	FEMField = fem.Field
	// SubmodelOptions configures the two-scale FEM golden.
	SubmodelOptions = fem.SubmodelOptions
	// Carrier selects NMOS or PMOS for mobility-variation analysis.
	Carrier = mobility.Carrier
	// PiezoCoefficients are piezoresistance coefficients in 1/MPa.
	PiezoCoefficients = mobility.Coefficients
	// Plane selects plane stress (device layer, the default) or plane
	// strain (deep cross-sections).
	Plane = material.Plane
	// OptimizeOptions configures stress-aware placement optimization.
	OptimizeOptions = optimize.Options
	// OptimizeResult reports an optimization outcome.
	OptimizeResult = optimize.Result
	// TSVReport is a per-via interfacial reliability screening result.
	TSVReport = reliability.TSVReport
	// ReliabilityOptions configures the interface screening.
	ReliabilityOptions = reliability.Options
)

// Standard materials (Section 5 of the paper).
var (
	Copper  = material.Copper
	BCB     = material.BCB
	SiO2    = material.SiO2
	Silicon = material.Silicon
)

// Evaluation modes for Analyzer.Map.
const (
	ModeLS          = core.ModeLS
	ModeFull        = core.ModeFull
	ModeInteractive = core.ModeInteractive
)

// Carrier types for mobility-variation analysis.
const (
	NMOS = mobility.NMOS
	PMOS = mobility.PMOS
)

// Plane modes.
const (
	PlaneStress = material.PlaneStress
	PlaneStrain = material.PlaneStrain
)

// Pt returns the point (x, y) in µm.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// RectAround returns the w×h rectangle centered at c.
func RectAround(c Point, w, h float64) Rect { return geom.RectAround(c, w, h) }

// Baseline returns the paper's baseline TSV structure (2.5 µm copper
// body, 0.5 µm liner, silicon substrate, ΔT = −250 K).
func Baseline(liner Material) Structure { return material.Baseline(liner) }

// NewPlacement builds a placement from TSV center points.
func NewPlacement(centers ...Point) *Placement { return geom.NewPlacement(centers...) }

// PairPlacement returns two TSVs at pitch d centered on the origin.
func PairPlacement(d float64) *Placement { return placegen.Pair(d) }

// FiveCrossPlacement returns the paper's five-TSV cross placement.
func FiveCrossPlacement(minPitch float64) *Placement { return placegen.FiveCross(minPitch) }

// ArrayPlacement returns an nx×ny regular TSV array.
func ArrayPlacement(nx, ny int, pitch float64) *Placement { return placegen.Array(nx, ny, pitch) }

// RandomPlacement returns n TSVs at the given density (µm⁻²) with a
// minimum-pitch constraint, deterministic in seed.
func RandomPlacement(n int, density, minPitch float64, seed int64) (*Placement, error) {
	return placegen.Random(n, density, minPitch, seed)
}

// NewAnalyzer builds the full-chip analyzer for a placement. The zero
// options select the paper's defaults (25 µm cutoffs, 9 series terms,
// table look-up Stage I).
func NewAnalyzer(st Structure, pl *Placement, opt AnalyzerOptions) (*Analyzer, error) {
	return core.New(st, pl, opt)
}

// SolveSingleTSV returns the analytical single-TSV solution, whose
// substrate field is σrr = K/r², σθθ = −K/r² (Eq. 6 of the paper).
func SolveSingleTSV(st Structure) (*SingleTSV, error) { return lame.Solve(st) }

// NewInteractModel builds the interactive-stress model for a TSV pair
// structure; mmax ≤ 0 selects the paper's default truncation (m ≤ 10).
func NewInteractModel(st Structure, mmax int) (*InteractModel, error) {
	return interact.New(st, mmax)
}

// SolveFEM runs the plane-stress finite-element solver on a placement
// over the given domain — the raw single-mesh solve.
func SolveFEM(pl *Placement, st Structure, domain Rect, opt FEMOptions) (*FEMResult, error) {
	return fem.Solve(pl, st, domain, opt)
}

// SolveFEMGolden runs the production-accuracy golden reference: a
// Richardson-extrapolated global solve plus fine submodel patches
// around every TSV.
func SolveFEMGolden(pl *Placement, st Structure, domain Rect, opt SubmodelOptions) (FEMField, error) {
	return fem.SolveSubmodel(pl, st, domain, opt)
}

// FEMDomainFor returns a solve domain covering the placement and the
// region of interest with the given margin.
func FEMDomainFor(pl *Placement, st Structure, region Rect, margin float64) Rect {
	return fem.DomainFor(pl, st, region, margin)
}

// PiezoDefaults returns the standard <110>/(001) silicon
// piezoresistance coefficients for a carrier type.
func PiezoDefaults(c Carrier) PiezoCoefficients { return mobility.Default110(c) }

// MobilityShift returns Δµ/µ, as a dimensionless fraction, for a
// channel at angle theta (radians) with the x-axis under the given
// device-layer stress (positive = faster).
func MobilityShift(s Stress, theta float64, k PiezoCoefficients) float64 {
	return mobility.Shift(s, theta, k)
}

// WorstMobilityShift returns the most negative Δµ/µ (a dimensionless
// fraction) over all channel orientations and its angle in radians.
func WorstMobilityShift(s Stress, k PiezoCoefficients) (shift, theta float64) {
	return mobility.WorstCase(s, k)
}

// KeepOutRadius returns the single-TSV keep-out-zone radius in µm:
// beyond it the worst-orientation |Δµ/µ| stays below the dimensionless
// tol (e.g. 0.01).
func KeepOutRadius(st Structure, c Carrier, tol float64) (float64, error) {
	sol, err := lame.Solve(st)
	if err != nil {
		return 0, err
	}
	return mobility.KeepOutRadius(sol, mobility.Default110(c), tol), nil
}

// OptimizePlacement runs stress-aware simulated-annealing placement
// optimization: TSVs move (within opt.Region, respecting opt.MinPitch)
// to keep the worst-orientation mobility shift at the fixed device
// sites within opt.MobilityBudget, using the full semi-analytical
// framework for stress evaluation.
func OptimizePlacement(st Structure, initial *Placement, sites []Point, opt OptimizeOptions) (*OptimizeResult, error) {
	return optimize.Minimize(context.Background(), st, initial, sites, opt)
}

// OptimizePlacementContext is OptimizePlacement under a context: the
// annealing search stops between (and inside) objective evaluations
// when ctx is canceled, returning an error that wraps ctx's error.
func OptimizePlacementContext(ctx context.Context, st Structure, initial *Placement, sites []Point, opt OptimizeOptions) (*OptimizeResult, error) {
	return optimize.Minimize(ctx, st, initial, sites, opt)
}

// ScreenReliability probes the liner/substrate interface ring of every
// TSV with the given stress evaluator (e.g. an Analyzer's StressAt) and
// reports the debonding drivers: maximum interface tension and shear,
// plus the ring von Mises maximum.
func ScreenReliability(pl *Placement, st Structure, eval func(Point) Stress, opt ReliabilityOptions) ([]TSVReport, error) {
	return reliability.Screen(pl, st, eval, opt)
}

// RankByTension orders screening reports worst-first.
func RankByTension(reports []TSVReport) []TSVReport {
	return reliability.RankByTension(reports)
}

// SolveSingleTSVPlane is SolveSingleTSV for an explicit plane mode.
func SolveSingleTSVPlane(st Structure, plane Plane) (*SingleTSV, error) {
	return lame.SolvePlane(st, plane)
}

// CompareFields computes the paper's error statistics between a golden
// and a method field over matched sample lists, for the named component
// ("xx", "yy", "vm" or "mts"), counting points whose golden magnitude
// exceeds threshold (MPa).
func CompareFields(golden, method []Stress, component string, threshold float64) (ErrorStats, error) {
	comp, err := metrics.ByName(component)
	if err != nil {
		return ErrorStats{}, err
	}
	return metrics.Compare(golden, method, comp, threshold)
}
