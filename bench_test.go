package tsvstress

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (DESIGN.md §5 maps ids to experiments). Each
// bench runs the corresponding experiment driver in Quick mode so the
// whole harness finishes in minutes; cmd/tsvexp regenerates the
// full-resolution numbers. Benchmarks report the headline error
// statistics as custom metrics so `go test -bench` output doubles as a
// shape check against the paper.

import (
	"testing"

	"tsvstress/internal/exp"
	"tsvstress/internal/material"
	"tsvstress/internal/metrics"
)

// BenchmarkFigure3 regenerates the σxx line-scan comparison (FEM vs LS
// vs PF) through two TSV centers at 10 µm pitch.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := exp.RunLineScan(exp.Config{Quick: true}, material.BCB, 10, 20, 81)
		if err != nil {
			b.Fatal(err)
		}
		var lsErr, pfErr float64
		for k := range sc.X {
			lsErr += absF(sc.LS[k] - sc.FEM[k])
			pfErr += absF(sc.PF[k] - sc.FEM[k])
		}
		n := float64(len(sc.X))
		b.ReportMetric(lsErr/n, "LSerr-MPa")
		b.ReportMetric(pfErr/n, "PFerr-MPa")
	}
}

// benchPair runs a two-TSV case and reports the monitored-region and
// critical-region statistics for a component.
func benchPair(b *testing.B, liner material.Material, d float64, comp metrics.Component) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		pc, err := exp.RunPairCase(exp.Config{Quick: true}, liner, d)
		if err != nil {
			b.Fatal(err)
		}
		ls, pf, err := pc.Rows(comp)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ls.Avg.AvgError, "LSavg-MPa")
		b.ReportMetric(pf.Avg.AvgError, "PFavg-MPa")
		b.ReportMetric(ls.Critical50.AvgErrorRate, "LScrit-pct")
		b.ReportMetric(pf.Critical50.AvgErrorRate, "PFcrit-pct")
	}
}

// BenchmarkTable1 regenerates the tightest-pitch row of Table 1
// (BCB, σxx, d = 8 µm) — the paper's headline 36.8% → 14.3% case.
func BenchmarkTable1(b *testing.B) { benchPair(b, material.BCB, 8, metrics.SigmaXX) }

// BenchmarkTable3 regenerates the d = 8 row of Table 3 (BCB, von Mises).
func BenchmarkTable3(b *testing.B) { benchPair(b, material.BCB, 8, metrics.VonMises) }

// BenchmarkTable4 regenerates the d = 8 row of Table 4 (SiO2, σxx).
func BenchmarkTable4(b *testing.B) { benchPair(b, material.SiO2, 8, metrics.SigmaXX) }

// BenchmarkTable5 regenerates the d = 8 row of Table 5 (SiO2, von Mises).
func BenchmarkTable5(b *testing.B) { benchPair(b, material.SiO2, 8, metrics.VonMises) }

// BenchmarkFigure4 regenerates the d = 10 µm σxx error maps (LS vs PF).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.Config{Quick: true}
		pc, err := exp.RunPairCase(cfg, material.BCB, 10)
		if err != nil {
			b.Fatal(err)
		}
		em, err := exp.BuildErrorMaps(cfg, pc, RectAround(Pt(0, 0), 60, 30))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(em.MaxLS, "LSmax-MPa")
		b.ReportMetric(em.MaxPF, "PFmax-MPa")
	}
}

// BenchmarkTable2 regenerates the five-TSV statistics (σxx and von
// Mises), and BenchmarkFigure6 its error maps; Figure 5 is the input
// placement itself.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fc, err := exp.RunFiveCase(exp.Config{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		ls, pf, err := fc.Rows(metrics.SigmaXX)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ls.Critical50.AvgErrorRate, "LScrit-pct")
		b.ReportMetric(pf.Critical50.AvgErrorRate, "PFcrit-pct")
	}
}

// BenchmarkFigure6 regenerates the five-TSV σxx error maps.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.Config{Quick: true}
		fc, err := exp.RunFiveCase(cfg)
		if err != nil {
			b.Fatal(err)
		}
		em, err := fc.ErrorMaps(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(em.MaxLS, "LSmax-MPa")
		b.ReportMetric(em.MaxPF, "PFmax-MPa")
	}
}

// BenchmarkTable6 regenerates the scalability study's densest case
// (case 1 scaled down): AR = additional PF time over LS time.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunRuntimeCase(exp.RuntimeCase{Name: "1", NumTSV: 100, Density: 1e-2, NumPoints: 50_000}, 2013)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AR, "AR-pct")
	}
}

// BenchmarkAnalyzerPointLS and BenchmarkAnalyzerPointFull measure the
// per-simulation-point cost of the two stages at the paper's densest
// configuration — the microscopic quantities behind Table 6.
func BenchmarkAnalyzerPointLS(b *testing.B) {
	benchAnalyzerPoint(b, false)
}

// BenchmarkAnalyzerPointFull measures Stage I + Stage II per point.
func BenchmarkAnalyzerPointFull(b *testing.B) {
	benchAnalyzerPoint(b, true)
}

func benchAnalyzerPoint(b *testing.B, full bool) {
	b.Helper()
	pl := ArrayPlacement(10, 10, 10)
	an, err := NewAnalyzer(Baseline(BCB), pl, AnalyzerOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	p := Pt(5, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if full {
			_ = an.StressAt(p)
		} else {
			_ = an.StressLS(p)
		}
	}
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
