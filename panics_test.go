package tsvstress

import (
	"context"
	"math"
	"testing"

	"tsvstress/internal/field"
	"tsvstress/internal/tensor"
)

// The public entry points must contain bad input as errors, never as
// panics from deep inside a kernel (a NaN coordinate sails through
// every < comparison and, unchecked, turns into a negative tile-grid
// dimension; a duplicate TSV is a zero pitch). Each case runs under a
// recover so a panic fails with the offending input named.
func TestBoundaryErrorsNotPanics(t *testing.T) {
	st := Baseline(BCB)
	nan := math.NaN()
	inf := math.Inf(1)

	mapInto := func(p Point) func() error {
		return func() error {
			an, err := NewAnalyzer(st, PairPlacement(10), AnalyzerOptions{})
			if err != nil {
				t.Fatalf("building analyzer: %v", err)
			}
			dst := make([]tensor.Stress, 1)
			return an.MapInto(context.Background(), dst, []Point{p}, ModeFull)
		}
	}

	cases := []struct {
		name    string
		run     func() error
		wantErr bool
	}{
		{"NewAnalyzer: NaN TSV coordinate", func() error {
			_, err := NewAnalyzer(st, NewPlacement(Pt(0, 0), Pt(nan, 5)), AnalyzerOptions{})
			return err
		}, true},
		{"NewAnalyzer: Inf TSV coordinate", func() error {
			_, err := NewAnalyzer(st, NewPlacement(Pt(0, 0), Pt(5, inf)), AnalyzerOptions{})
			return err
		}, true},
		{"NewAnalyzer: duplicate TSV positions", func() error {
			_, err := NewAnalyzer(st, NewPlacement(Pt(3, 3), Pt(3, 3)), AnalyzerOptions{})
			return err
		}, true},
		{"MapInto: NaN point", mapInto(Pt(nan, 0)), true},
		{"MapInto: Inf point", mapInto(Pt(0, inf)), true},
		{"NewGrid: zero-size region", func() error {
			_, err := field.NewGrid(RectAround(Pt(0, 0), 0, 0), 0.5)
			return err
		}, true},
		{"NewGrid: zero spacing", func() error {
			_, err := field.NewGrid(RectAround(Pt(0, 0), 10, 10), 0)
			return err
		}, true},
		{"NewGrid: NaN spacing", func() error {
			_, err := field.NewGrid(RectAround(Pt(0, 0), 10, 10), nan)
			return err
		}, true},
		{"StressAt: NaN query point", func() error {
			an, err := NewAnalyzer(st, PairPlacement(10), AnalyzerOptions{})
			if err != nil {
				t.Fatalf("building analyzer: %v", err)
			}
			_ = an.StressAt(Pt(nan, nan)) // pure evaluator: garbage in, garbage out, no panic
			return nil
		}, false},
		{"RandomPlacement: NaN density", func() error {
			_, err := RandomPlacement(10, nan, 5, 1)
			return err
		}, true},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked instead of returning an error: %v", r)
				}
			}()
			err := tc.run()
			if tc.wantErr && err == nil {
				t.Fatal("expected an error, got nil")
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}
