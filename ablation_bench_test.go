package tsvstress

// Ablation benchmarks for the framework's design choices (DESIGN.md):
// the Stage I look-up table vs exact evaluation, the interactive-series
// truncation MMax, and the Stage II pair cutoffs. Each bench reports
// the accuracy cost of the cheaper variant as custom metrics next to
// its speed.

import (
	"math"
	"testing"
)

func benchPlacement(b *testing.B) *Placement {
	b.Helper()
	return ArrayPlacement(8, 8, 10)
}

// BenchmarkAblationTableLS measures Stage I with the paper's radial
// look-up table (the production configuration).
func BenchmarkAblationTableLS(b *testing.B) {
	an, err := NewAnalyzer(Baseline(BCB), benchPlacement(b), AnalyzerOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	p := Pt(5, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = an.StressLS(p)
	}
}

// BenchmarkAblationExactLS measures Stage I with exact analytical
// evaluation instead of the table.
func BenchmarkAblationExactLS(b *testing.B) {
	an, err := NewAnalyzer(Baseline(BCB), benchPlacement(b), AnalyzerOptions{Workers: 1, ExactLS: true})
	if err != nil {
		b.Fatal(err)
	}
	p := Pt(5, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = an.StressLS(p)
	}
}

// BenchmarkAblationMMax sweeps the interactive-series truncation: the
// paper uses MMax = 10; lower truncations are faster but lose accuracy
// at tight pitch. The reported delta is against MMax = 20 at a point
// near the victim boundary of an 8 µm pair.
func BenchmarkAblationMMax(b *testing.B) {
	pl := PairPlacement(8)
	ref, err := NewAnalyzer(Baseline(BCB), pl, AnalyzerOptions{Workers: 1, MMax: 20})
	if err != nil {
		b.Fatal(err)
	}
	p := Pt(0.8, 0.5) // ~3.2 µm from the left TSV center
	refS := ref.StressAt(p)
	for _, mmax := range []int{4, 6, 10, 14} {
		b.Run(benchName("mmax", mmax), func(b *testing.B) {
			an, err := NewAnalyzer(Baseline(BCB), pl, AnalyzerOptions{Workers: 1, MMax: mmax})
			if err != nil {
				b.Fatal(err)
			}
			s := an.StressAt(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = an.StressAt(p)
			}
			b.ReportMetric(math.Abs(s.XX-refS.XX)+math.Abs(s.YY-refS.YY)+math.Abs(s.XY-refS.XY), "trunc-MPa")
		})
	}
}

// BenchmarkAblationPairCutoff sweeps the Stage II pair-pitch cutoff on
// a dense array: a tighter cutoff prunes pair rounds (reported) and
// changes the stress by the also-reported amount relative to the
// paper's 25 µm setting.
func BenchmarkAblationPairCutoff(b *testing.B) {
	pl := benchPlacement(b)
	ref, err := NewAnalyzer(Baseline(BCB), pl, AnalyzerOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	p := Pt(5, 5)
	refS := ref.StressAt(p)
	for _, cutoff := range []float64{10.5, 15, 25} {
		b.Run(benchName("pitchCutoff", int(cutoff)), func(b *testing.B) {
			an, err := NewAnalyzer(Baseline(BCB), pl, AnalyzerOptions{Workers: 1, PairPitchCutoff: cutoff})
			if err != nil {
				b.Fatal(err)
			}
			s := an.StressAt(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = an.StressAt(p)
			}
			b.ReportMetric(float64(an.NumPairRounds()), "rounds")
			b.ReportMetric(math.Abs(s.XX-refS.XX)+math.Abs(s.YY-refS.YY)+math.Abs(s.XY-refS.XY), "delta-MPa")
		})
	}
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "=" + string(buf[i:])
}
