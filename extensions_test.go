package tsvstress

import (
	"testing"
	"tsvstress/internal/floats"
)

func TestPublicMobilityAPI(t *testing.T) {
	k := PiezoDefaults(PMOS)
	if k.PiL <= 0 {
		t.Error("PMOS πL should be positive")
	}
	s := Stress{XX: 100}
	if MobilityShift(s, 0, k) >= 0 {
		t.Error("PMOS under longitudinal tension should lose mobility")
	}
	worst, _ := WorstMobilityShift(s, k)
	// For uniaxial σxx the longitudinal channel IS the worst case;
	// allow round-off on the equality.
	if worst > MobilityShift(s, 0, k)+1e-12 {
		t.Error("worst case should not exceed a specific orientation")
	}
	r, err := KeepOutRadius(Baseline(BCB), PMOS, 0.01)
	if err != nil || r < 3 {
		t.Errorf("KOZ radius = %v, %v", r, err)
	}
	bad := Baseline(BCB)
	bad.R = -1
	if _, err := KeepOutRadius(bad, PMOS, 0.01); err == nil {
		t.Error("bad structure should fail")
	}
}

func TestPublicPlaneStrainAPI(t *testing.T) {
	ps, err := SolveSingleTSVPlane(Baseline(BCB), PlaneStress)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := SolveSingleTSVPlane(Baseline(BCB), PlaneStrain)
	if err != nil {
		t.Fatal(err)
	}
	if !(pe.K > ps.K) {
		t.Errorf("plane-strain K %v should exceed plane-stress K %v", pe.K, ps.K)
	}
	// FEM accepts the plane mode.
	pl := NewPlacement(Pt(0, 0))
	dom := FEMDomainFor(pl, Baseline(BCB), RectAround(Pt(0, 0), 16, 16), 4)
	res, err := SolveFEM(pl, Baseline(BCB), dom, FEMOptions{H: 0.5, Plane: PlaneStrain})
	if err != nil {
		t.Fatal(err)
	}
	got := res.StressAt(Pt(5, 0)).XX
	want := pe.StressAt(Pt(5, 0), Pt(0, 0)).XX
	if !floats.AlmostEqualRel(got, want, 0.35) {
		t.Errorf("plane-strain FEM σxx %v vs analytic %v", got, want)
	}
}

func TestPublicOptimizeAPI(t *testing.T) {
	st := Baseline(BCB)
	initial := PairPlacement(8)
	sites := []Point{Pt(0, 0), Pt(0, 4)}
	res, err := OptimizePlacement(st, initial, sites, OptimizeOptions{
		Region:     RectAround(Pt(0, 0), 50, 50),
		Carrier:    PMOS,
		Iterations: 200,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalCost > res.InitialCost {
		t.Errorf("cost grew: %v → %v", res.InitialCost, res.FinalCost)
	}
	if res.Placement.Len() != 2 {
		t.Error("placement size changed")
	}
}
